//! The structured I/O error taxonomy of the storage layer.
//!
//! Every fallible backend and store operation reports a [`PageIoError`]
//! classifying the failure into one of three [`FaultKind`]s, because the
//! three demand different reactions:
//!
//! * [`FaultKind::Transient`] — the operation may succeed if repeated
//!   (interrupted syscalls, injected flaky-storage faults). The store
//!   retries these itself under its bounded
//!   [`RetryPolicy`](crate::store::RetryPolicy); callers only ever see a
//!   transient error once the retry budget is exhausted.
//! * [`FaultKind::Persistent`] — repeating cannot help (I/O error from the
//!   medium, failed syscall with a non-retryable errno). Surfaced to the
//!   caller immediately.
//! * [`FaultKind::Corrupt`] — the frame transferred fine but failed its
//!   checksum (bit-rot, torn write). The store quarantines the frame so
//!   later reads fail fast instead of re-decoding garbage.
//!
//! See the failure-model section of the [crate docs](crate) for which
//! errors are query-fatal vs service-fatal.

use std::fmt;

/// Classification of a storage failure — see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Retryable: the same operation may succeed if repeated.
    Transient,
    /// Not retryable: the medium or syscall failed for good.
    Persistent,
    /// The frame bytes arrived but failed their integrity check.
    Corrupt,
}

impl FaultKind {
    /// Short lowercase name used in diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Persistent => "persistent",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// Which storage operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A frame read.
    Read,
    /// A frame write.
    Write,
    /// A durability flush.
    Flush,
}

impl IoOp {
    /// Short lowercase name used in diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Flush => "flush",
        }
    }
}

/// A structured storage-layer error: what failed, on which frame, and
/// whether retrying can help.
///
/// `Clone` so the error can be latched in one place (a reader, a stream)
/// and surfaced in another (a service completion) without consuming it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageIoError {
    /// Failure classification (drives retry / quarantine / fail-fast).
    pub kind: FaultKind,
    /// The operation that failed.
    pub op: IoOp,
    /// The frame index involved, when the failure is frame-specific.
    pub page: Option<u32>,
    /// Human-readable cause (errno text, checksum mismatch, injected-fault
    /// tag).
    pub detail: String,
}

impl PageIoError {
    /// A retryable failure.
    pub fn transient(op: IoOp, page: Option<u32>, detail: impl Into<String>) -> Self {
        PageIoError {
            kind: FaultKind::Transient,
            op,
            page,
            detail: detail.into(),
        }
    }

    /// A non-retryable failure.
    pub fn persistent(op: IoOp, page: Option<u32>, detail: impl Into<String>) -> Self {
        PageIoError {
            kind: FaultKind::Persistent,
            op,
            page,
            detail: detail.into(),
        }
    }

    /// An integrity failure (checksum mismatch).
    pub fn corrupt(op: IoOp, page: Option<u32>, detail: impl Into<String>) -> Self {
        PageIoError {
            kind: FaultKind::Corrupt,
            op,
            page,
            detail: detail.into(),
        }
    }

    /// Whether the store's retry policy applies to this error.
    pub fn is_transient(&self) -> bool {
        self.kind == FaultKind::Transient
    }

    /// Classifies a `std::io::Error`: interrupted/timed-out syscalls are
    /// transient, everything else persistent.
    pub fn from_io(op: IoOp, page: Option<u32>, err: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        let kind = match err.kind() {
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                FaultKind::Transient
            }
            _ => FaultKind::Persistent,
        };
        PageIoError {
            kind,
            op,
            page,
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for PageIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} error", self.kind.name(), self.op.name())?;
        if let Some(page) = self.page {
            write!(f, " on frame {page}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for PageIoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_kind_op_and_frame() {
        let e = PageIoError::transient(IoOp::Read, Some(7), "injected");
        assert_eq!(e.to_string(), "transient read error on frame 7: injected");
        assert!(e.is_transient());
        let e = PageIoError::corrupt(IoOp::Read, Some(3), "checksum mismatch");
        assert!(e.to_string().starts_with("corrupt read error on frame 3"));
        assert!(!e.is_transient());
        let e = PageIoError::persistent(IoOp::Flush, None, "disk on fire");
        assert_eq!(e.to_string(), "persistent flush error: disk on fire");
    }

    #[test]
    fn io_error_classification() {
        let interrupted = std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR");
        assert_eq!(
            PageIoError::from_io(IoOp::Read, Some(0), &interrupted).kind,
            FaultKind::Transient
        );
        let denied = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "EACCES");
        assert_eq!(
            PageIoError::from_io(IoOp::Write, Some(0), &denied).kind,
            FaultKind::Persistent
        );
    }
}
