//! Pluggable page-frame storage: the [`PageBackend`] trait and its three
//! implementations, [`HeapBackend`] (in-memory frames, the historical
//! simulated disk), [`FileBackend`] (a real file accessed with positioned
//! reads and writes) and [`MmapBackend`](crate::MmapBackend) (memory-mapped
//! frames over an unlinked temp file).
//!
//! The backend sits *below* the LRU buffer and the [`IoStats`]
//! accounting of [`PageStore`](crate::PageStore): it only moves fixed-size
//! byte frames. Which backend is plugged in therefore cannot change any
//! logical read/write count, buffer hit, eviction or page-access total — the
//! **backend parity guarantee** asserted by the integration tests. What
//! the backend *adds* is a second, independent measurement: the
//! [`BackendIo`] byte counters record how many bytes were actually
//! transferred.
//!
//! # The counting contract
//!
//! Every transfer carries an [`IoClass`] chosen by the store, and the
//! backend must account each byte in exactly one bucket of [`BackendIo`]:
//!
//! * [`IoClass::Metered`] transfers are the experiment-visible I/O: buffer
//!   misses, eviction write-backs, [`PageStore::flush`] write-backs and
//!   replayed reads. For a store whose accounting is intact, `bytes_read ==
//!   physical_reads × page_size` **and** `bytes_written == physical_writes ×
//!   page_size` — the two invariants the `io_validation` bench experiment
//!   and `metered_byte_contract_holds_for_every_backend` check. All three
//!   backends count metered transfers identically; historically
//!   `drop_buffer`'s write-backs were "uncounted-but-real" (bytes moved,
//!   `physical_writes` did not), which broke the written-byte half of the
//!   contract on the file backend.
//! * [`IoClass::Unmetered`] transfers are real bytes that are deliberately
//!   *outside* the measured experiment: `drop_buffer` write-backs (the
//!   measurement-reset path) and cold [`PageStore::peek`] decodes (snapshot
//!   reads whose accounting is deferred to trace replay, or skipped
//!   entirely in fast mode). They land in
//!   [`BackendIo::unmetered_bytes_read`] / `unmetered_bytes_written`, so no
//!   byte is ever silently dropped and the metered invariants stay exact.
//!
//! Relaxed-consistency contract: the only atomic in this module is the
//! process-wide temp-file name counter (`FILE_COUNTER`), whose sole job is
//! handing out distinct integers — `fetch_add`'s per-object modification
//! order guarantees uniqueness under `Ordering::Relaxed`, and nothing else
//! is ordered against it.
//!
//! [`IoStats`]: crate::IoStats
//! [`PageStore::flush`]: crate::PageStore::flush
//! [`PageStore::peek`]: crate::PageStore::peek

use std::fmt;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{IoOp, PageIoError};
use crate::fault::FaultStats;

/// Which [`PageBackend`] a [`PageStore`](crate::PageStore) uses for its
/// frames.
///
/// This is the configuration-level knob ([`PageStoreConfig::backend`],
/// threaded up through `cij_core::CijConfig::storage_backend` and the
/// `CIJ_STORAGE` environment override); the trait object itself is created
/// by [`StorageBackend::create`].
///
/// [`PageStoreConfig::backend`]: crate::PageStoreConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// Frames live in memory — the simulated disk the reproduction started
    /// with. No persistence, no real I/O; byte counters still account every
    /// frame transfer.
    #[default]
    Heap,
    /// Frames live in a real file (anonymous, in the system temp directory)
    /// accessed with `read_at`/`write_at`, so every buffer miss and
    /// write-back is an actual positioned disk I/O.
    File,
    /// Frames live in memory-mapped segments of an unlinked temp file
    /// ([`MmapBackend`](crate::MmapBackend)): transfers are `memcpy`s into
    /// the kernel page cache, residency is the kernel's to manage, so
    /// datasets can exceed the configured buffer (and eventually RAM).
    Mmap,
}

impl StorageBackend {
    /// Every selectable backend, for sweeps and tests.
    pub const ALL: [StorageBackend; 3] = [
        StorageBackend::Heap,
        StorageBackend::File,
        StorageBackend::Mmap,
    ];

    /// Short lowercase name, the same token [`StorageBackend::from_str`]
    /// parses.
    pub fn name(&self) -> &'static str {
        match self {
            StorageBackend::Heap => "heap",
            StorageBackend::File => "file",
            StorageBackend::Mmap => "mmap",
        }
    }

    /// Creates a fresh, empty backend of this kind for `frame_size`-byte
    /// frames.
    pub fn create(self, frame_size: usize) -> Box<dyn PageBackend> {
        match self {
            StorageBackend::Heap => Box::new(HeapBackend::new(frame_size)),
            StorageBackend::File => Box::new(FileBackend::anonymous(frame_size)),
            StorageBackend::Mmap => Box::new(crate::MmapBackend::anonymous(frame_size)),
        }
    }
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StorageBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" | "mem" | "memory" => Ok(StorageBackend::Heap),
            "file" | "disk" => Ok(StorageBackend::File),
            "mmap" | "map" => Ok(StorageBackend::Mmap),
            other => Err(format!(
                "unknown storage backend {other:?} (expected \"heap\", \"file\" or \"mmap\")"
            )),
        }
    }
}

/// Whether a backend transfer belongs to the measured experiment.
///
/// The [`PageStore`](crate::PageStore) classifies every transfer it issues;
/// the backend routes the bytes into the matching [`BackendIo`] bucket. See
/// the [module docs](self) for the full counting contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// Experiment-visible I/O: paired one-to-one with a
    /// `physical_reads`/`physical_writes` increment in the store's
    /// [`IoStats`](crate::IoStats).
    Metered,
    /// Real bytes outside the measured experiment: `drop_buffer`
    /// write-backs and cold snapshot (`peek`) decodes.
    Unmetered,
}

/// Byte counters of a [`PageBackend`]: the *actual* I/O volume, as opposed
/// to the logical page-access counts of [`IoStats`](crate::IoStats).
///
/// Metered counters advance by exactly one frame size per metered
/// operation, so for a store whose accounting is intact, `bytes_read ==
/// physical_reads × page_size` and `bytes_written == physical_writes ×
/// page_size` — the invariants the `io_validation` and `out_of_core` bench
/// experiments check. The unmetered counters account every remaining real
/// transfer (see the [module docs](self)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendIo {
    /// Bytes read from the backing storage by metered transfers.
    pub bytes_read: u64,
    /// Bytes written to the backing storage by metered transfers.
    pub bytes_written: u64,
    /// Bytes read outside the measured experiment (cold `peek` decodes).
    pub unmetered_bytes_read: u64,
    /// Bytes written outside the measured experiment (`drop_buffer`
    /// write-backs).
    pub unmetered_bytes_written: u64,
}

impl BackendIo {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &BackendIo) -> BackendIo {
        BackendIo {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            unmetered_bytes_read: self
                .unmetered_bytes_read
                .saturating_sub(earlier.unmetered_bytes_read),
            unmetered_bytes_written: self
                .unmetered_bytes_written
                .saturating_sub(earlier.unmetered_bytes_written),
        }
    }

    /// Sum of two counter sets (e.g. the two trees of a workload).
    pub fn plus(&self, other: &BackendIo) -> BackendIo {
        BackendIo {
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            unmetered_bytes_read: self.unmetered_bytes_read + other.unmetered_bytes_read,
            unmetered_bytes_written: self.unmetered_bytes_written + other.unmetered_bytes_written,
        }
    }

    /// Every byte moved, metered or not.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read
            + self.bytes_written
            + self.unmetered_bytes_read
            + self.unmetered_bytes_written
    }

    /// Records `n` read bytes under `class` (backend-implementation helper).
    pub fn record_read(&mut self, class: IoClass, n: u64) {
        match class {
            IoClass::Metered => self.bytes_read += n,
            IoClass::Unmetered => self.unmetered_bytes_read += n,
        }
    }

    /// Records `n` written bytes under `class` (backend-implementation
    /// helper).
    pub fn record_write(&mut self, class: IoClass, n: u64) {
        match class {
            IoClass::Metered => self.bytes_written += n,
            IoClass::Unmetered => self.unmetered_bytes_written += n,
        }
    }
}

/// Storage of fixed-size byte frames, one per [`PageId`](crate::PageId).
///
/// The [`PageStore`](crate::PageStore) drives the backend under write-back
/// semantics: `allocate` only reserves a frame slot (the first `write`
/// happens when the page is evicted from the LRU buffer or flushed), `read`
/// is only issued on buffer misses or cold `peek`s, and a frame is never
/// read before its first write — implementations are encouraged to assert
/// that invariant, because violating it means the store's accounting has
/// drifted. Every transfer carries the [`IoClass`] the store assigned it;
/// the backend accounts the bytes accordingly (see the [module
/// docs](self)).
pub trait PageBackend: fmt::Debug + Send + Sync {
    /// Which configuration knob selects this backend.
    fn kind(&self) -> StorageBackend;

    /// Size of one frame in bytes (the page size).
    fn frame_size(&self) -> usize;

    /// Reserves the next frame slot and returns its index. Indices are
    /// dense, starting at 0; freed slots are not recycled.
    fn allocate(&mut self) -> u32;

    /// Reads the frame at `index` into `frame` (`frame.len() ==
    /// frame_size()`), accounting the bytes under `class`. On `Err` no
    /// bytes are accounted and `frame` contents are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if the frame was never written or was freed — that is a
    /// store-accounting bug, not a storage failure, so it is *not* part of
    /// the [`PageIoError`] taxonomy.
    fn read(&mut self, index: u32, frame: &mut [u8], class: IoClass) -> Result<(), PageIoError>;

    /// Writes the frame at `index` (`frame.len() == frame_size()`),
    /// accounting the bytes under `class`. On `Err` no bytes are accounted
    /// and the slot keeps its previous validity.
    fn write(&mut self, index: u32, frame: &[u8], class: IoClass) -> Result<(), PageIoError>;

    /// Marks a frame slot as freed; it must not be read again.
    fn free(&mut self, index: u32);

    /// Makes previous writes durable where the medium supports it (no-op
    /// for the heap backend).
    fn flush(&mut self) -> Result<(), PageIoError>;

    /// Bytes transferred so far.
    fn io(&self) -> BackendIo;

    /// Fault-injection counters. Zero for every real backend; the
    /// [`FaultBackend`](crate::FaultBackend) wrapper overrides this with
    /// its injection tallies so the store can surface them alongside
    /// [`BackendIo`].
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// An independent copy of this backend with identical contents (used by
    /// `PageStore::clone`).
    fn clone_backend(&self) -> Box<dyn PageBackend>;
}

/// The in-memory backend: frames in a `Vec`, byte-for-byte the simulated
/// disk this reproduction always had — plus the [`BackendIo`] counters.
#[derive(Debug, Clone, Default)]
pub struct HeapBackend {
    frame_size: usize,
    frames: Vec<Option<Box<[u8]>>>,
    io: BackendIo,
}

impl HeapBackend {
    /// Creates an empty heap backend for `frame_size`-byte frames.
    pub fn new(frame_size: usize) -> Self {
        HeapBackend {
            frame_size,
            frames: Vec::new(),
            io: BackendIo::default(),
        }
    }
}

impl PageBackend for HeapBackend {
    fn kind(&self) -> StorageBackend {
        StorageBackend::Heap
    }

    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn allocate(&mut self) -> u32 {
        self.frames.push(None);
        (self.frames.len() - 1) as u32
    }

    fn read(&mut self, index: u32, frame: &mut [u8], class: IoClass) -> Result<(), PageIoError> {
        let stored = self.frames[index as usize]
            .as_ref()
            .expect("backend read of a never-written or freed frame");
        frame.copy_from_slice(stored);
        self.io.record_read(class, self.frame_size as u64);
        Ok(())
    }

    fn write(&mut self, index: u32, frame: &[u8], class: IoClass) -> Result<(), PageIoError> {
        assert_eq!(frame.len(), self.frame_size, "frame size mismatch");
        match &mut self.frames[index as usize] {
            // Overwrite in place: no fresh allocation per write-back.
            Some(existing) => existing.copy_from_slice(frame),
            slot => *slot = Some(frame.into()),
        }
        self.io.record_write(class, self.frame_size as u64);
        Ok(())
    }

    fn free(&mut self, index: u32) {
        if let Some(slot) = self.frames.get_mut(index as usize) {
            *slot = None;
        }
    }

    fn flush(&mut self) -> Result<(), PageIoError> {
        Ok(())
    }

    fn io(&self) -> BackendIo {
        self.io
    }

    fn clone_backend(&self) -> Box<dyn PageBackend> {
        Box::new(self.clone())
    }
}

/// Monotonic discriminator for anonymous backing-file names (several stores
/// are routinely alive at once — `RP`, `RQ`, Voronoi trees).
pub(crate) static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Creates, opens and immediately unlinks a fresh anonymous file in the
/// system temp directory — shared by the file and mmap backends.
pub(crate) fn anonymous_file(tag: &str) -> File {
    let serial = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = format!("cij-{tag}-{}-{}.pages", std::process::id(), serial);
    let path = std::env::temp_dir().join(name);
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("create pagestore file {}: {e}", path.display()));
    std::fs::remove_file(&path).expect("unlink anonymous pagestore file");
    file
}

/// The real-file backend: one frame per `page_size`-byte slot of a file,
/// accessed with positioned I/O (`FileExt::read_at` / `write_at`).
///
/// [`FileBackend::anonymous`] creates the file in the system temp directory
/// and immediately unlinks it, so the data lives exactly as long as the
/// backend (kernel cleanup on drop or crash, nothing to clean up by hand).
/// [`FileBackend::at_path`] keeps the file visible for inspection.
///
/// The `written` bitmap tracks which slots hold valid frames; reading a
/// never-written slot panics instead of returning uninitialized file bytes,
/// which is the backend-level symptom of broken write-back accounting.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    /// `Some` only for [`FileBackend::at_path`] backends (anonymous files
    /// have no path once unlinked).
    path: Option<PathBuf>,
    frame_size: usize,
    written: Vec<bool>,
    io: BackendIo,
}

impl FileBackend {
    /// Creates a backend over a fresh anonymous file in the system temp
    /// directory (created, opened, unlinked).
    pub fn anonymous(frame_size: usize) -> Self {
        assert!(frame_size > 0, "frame size must be positive");
        FileBackend {
            file: anonymous_file("pagestore"),
            path: None,
            frame_size,
            written: Vec::new(),
            io: BackendIo::default(),
        }
    }

    /// Creates a backend over a visible file at `path` (truncated if it
    /// exists). The file is *not* removed on drop.
    pub fn at_path<P: AsRef<Path>>(path: P, frame_size: usize) -> Self {
        assert!(frame_size > 0, "frame size must be positive");
        let path = path.as_ref();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .unwrap_or_else(|e| panic!("create pagestore file {}: {e}", path.display()));
        FileBackend {
            file,
            path: Some(path.to_path_buf()),
            frame_size,
            written: Vec::new(),
            io: BackendIo::default(),
        }
    }

    /// The backing file's path, when it has one ([`FileBackend::at_path`]).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn offset(&self, index: u32) -> u64 {
        index as u64 * self.frame_size as u64
    }
}

/// Fills `buf` from `file` at `offset`, looping on short reads and retrying
/// `EINTR` — positioned syscalls may legally transfer fewer bytes than asked
/// (signals, pipes-over-NFS, large frames), so a single `read_at` is not a
/// full-frame guarantee.
pub(crate) fn read_full_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    let mut done = 0usize;
    while done < buf.len() {
        match file.read_at(&mut buf[done..], offset + done as u64) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("short read: {done} of {} bytes", buf.len()),
                ))
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes all of `buf` to `file` at `offset`, looping on short writes and
/// retrying `EINTR` (the write-side twin of [`read_full_at`]).
pub(crate) fn write_full_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    let mut done = 0usize;
    while done < buf.len() {
        match file.write_at(&buf[done..], offset + done as u64) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    format!("short write: {done} of {} bytes", buf.len()),
                ))
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl PageBackend for FileBackend {
    fn kind(&self) -> StorageBackend {
        StorageBackend::File
    }

    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn allocate(&mut self) -> u32 {
        self.written.push(false);
        (self.written.len() - 1) as u32
    }

    fn read(&mut self, index: u32, frame: &mut [u8], class: IoClass) -> Result<(), PageIoError> {
        assert!(
            self.written.get(index as usize).copied().unwrap_or(false),
            "backend read of a never-written or freed frame"
        );
        read_full_at(&self.file, frame, self.offset(index))
            .map_err(|e| PageIoError::from_io(IoOp::Read, Some(index), &e))?;
        self.io.record_read(class, self.frame_size as u64);
        Ok(())
    }

    fn write(&mut self, index: u32, frame: &[u8], class: IoClass) -> Result<(), PageIoError> {
        assert_eq!(frame.len(), self.frame_size, "frame size mismatch");
        write_full_at(&self.file, frame, self.offset(index))
            .map_err(|e| PageIoError::from_io(IoOp::Write, Some(index), &e))?;
        self.written[index as usize] = true;
        self.io.record_write(class, self.frame_size as u64);
        Ok(())
    }

    fn free(&mut self, index: u32) {
        if let Some(slot) = self.written.get_mut(index as usize) {
            *slot = false;
        }
    }

    fn flush(&mut self) -> Result<(), PageIoError> {
        // Counted page accesses — not durability — are what the experiments
        // measure, but syncing keeps the backend honest as real storage.
        self.file
            .sync_data()
            .map_err(|e| PageIoError::from_io(IoOp::Flush, None, &e))
    }

    fn io(&self) -> BackendIo {
        self.io
    }

    fn clone_backend(&self) -> Box<dyn PageBackend> {
        // An independent copy: fresh anonymous file, every valid frame
        // copied over. The copy is maintenance traffic, not measured I/O,
        // so the byte counters transfer unchanged instead of growing.
        let mut copy = FileBackend::anonymous(self.frame_size);
        let mut frame = vec![0u8; self.frame_size];
        for (index, &written) in self.written.iter().enumerate() {
            copy.written.push(false);
            if written {
                read_full_at(&self.file, &mut frame, self.offset(index as u32))
                    .unwrap_or_else(|e| panic!("clone read frame {index}: {e}"));
                write_full_at(&copy.file, &frame, copy.offset(index as u32))
                    .unwrap_or_else(|e| panic!("clone write frame {index}: {e}"));
                copy.written[index] = true;
            }
        }
        copy.io = self.io;
        Box::new(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut b: Box<dyn PageBackend>) -> Box<dyn PageBackend> {
        let fs = b.frame_size();
        let a = b.allocate();
        let c = b.allocate();
        assert_eq!((a, c), (0, 1));
        let mut frame = vec![0u8; fs];
        frame[0] = 0xAB;
        frame[fs - 1] = 0xCD;
        b.write(a, &frame, IoClass::Metered).unwrap();
        frame[0] = 0x11;
        b.write(c, &frame, IoClass::Metered).unwrap();
        let mut out = vec![0u8; fs];
        b.read(a, &mut out, IoClass::Metered).unwrap();
        assert_eq!((out[0], out[fs - 1]), (0xAB, 0xCD));
        b.read(c, &mut out, IoClass::Metered).unwrap();
        assert_eq!(out[0], 0x11);
        // Overwrite sticks.
        frame[0] = 0x22;
        b.write(a, &frame, IoClass::Metered).unwrap();
        b.read(a, &mut out, IoClass::Metered).unwrap();
        assert_eq!(out[0], 0x22);
        b.flush().unwrap();
        let io = b.io();
        assert_eq!(io.bytes_written, 3 * fs as u64);
        assert_eq!(io.bytes_read, 3 * fs as u64);
        assert_eq!(
            (io.unmetered_bytes_read, io.unmetered_bytes_written),
            (0, 0)
        );
        b
    }

    #[test]
    fn heap_backend_roundtrip_and_counters() {
        let b = exercise(Box::new(HeapBackend::new(64)));
        assert_eq!(b.kind(), StorageBackend::Heap);
    }

    #[test]
    fn file_backend_roundtrip_and_counters() {
        let b = exercise(Box::new(FileBackend::anonymous(64)));
        assert_eq!(b.kind(), StorageBackend::File);
    }

    #[test]
    fn mmap_backend_roundtrip_and_counters() {
        let b = exercise(Box::new(crate::MmapBackend::anonymous(64)));
        assert_eq!(b.kind(), StorageBackend::Mmap);
    }

    #[test]
    fn every_backend_routes_bytes_by_io_class() {
        // The counting contract: each transfer lands in exactly one bucket,
        // chosen by the store-assigned IoClass — identically on all three
        // backends.
        for kind in StorageBackend::ALL {
            let mut b = kind.create(32);
            let i = b.allocate();
            let frame = [5u8; 32];
            let mut out = [0u8; 32];
            b.write(i, &frame, IoClass::Unmetered).unwrap();
            b.read(i, &mut out, IoClass::Unmetered).unwrap();
            b.write(i, &frame, IoClass::Metered).unwrap();
            b.read(i, &mut out, IoClass::Metered).unwrap();
            let io = b.io();
            assert_eq!(
                (io.bytes_read, io.bytes_written),
                (32, 32),
                "{kind}: metered bucket"
            );
            assert_eq!(
                (io.unmetered_bytes_read, io.unmetered_bytes_written),
                (32, 32),
                "{kind}: unmetered bucket"
            );
            assert_eq!(io.total_bytes(), 128, "{kind}: no byte dropped");
        }
    }

    #[test]
    fn file_backend_at_path_is_visible_and_frames_land_at_offsets() {
        let path = std::env::temp_dir().join(format!(
            "cij-backend-test-{}-{}.pages",
            std::process::id(),
            FILE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut b = FileBackend::at_path(&path, 16);
            assert_eq!(b.path(), Some(path.as_path()));
            let i0 = b.allocate();
            let i1 = b.allocate();
            b.write(i1, &[1u8; 16], IoClass::Metered).unwrap();
            b.write(i0, &[2u8; 16], IoClass::Metered).unwrap();
            b.flush().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 32);
        assert!(bytes[..16].iter().all(|&x| x == 2));
        assert!(bytes[16..].iter().all(|&x| x == 1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "never-written")]
    fn heap_read_before_write_panics() {
        let mut b = HeapBackend::new(8);
        let i = b.allocate();
        let mut out = vec![0u8; 8];
        b.read(i, &mut out, IoClass::Metered).unwrap();
    }

    #[test]
    #[should_panic(expected = "never-written")]
    fn file_read_before_write_panics() {
        let mut b = FileBackend::anonymous(8);
        let i = b.allocate();
        let mut out = vec![0u8; 8];
        b.read(i, &mut out, IoClass::Metered).unwrap();
    }

    #[test]
    #[should_panic(expected = "never-written")]
    fn file_read_after_free_panics() {
        let mut b = FileBackend::anonymous(8);
        let i = b.allocate();
        b.write(i, &[9u8; 8], IoClass::Metered).unwrap();
        b.free(i);
        let mut out = vec![0u8; 8];
        b.read(i, &mut out, IoClass::Metered).unwrap();
    }

    #[test]
    fn clone_backend_is_independent_with_identical_contents() {
        for kind in StorageBackend::ALL {
            let mut b = kind.create(8);
            let i = b.allocate();
            b.write(i, &[7u8; 8], IoClass::Metered).unwrap();
            let mut copy = b.clone_backend();
            assert_eq!(copy.kind(), kind);
            assert_eq!(copy.io(), b.io());
            // Divergent writes stay private to each copy.
            copy.write(i, &[8u8; 8], IoClass::Metered).unwrap();
            let mut out = vec![0u8; 8];
            b.read(i, &mut out, IoClass::Metered).unwrap();
            assert_eq!(out, [7u8; 8], "{kind}: original mutated by clone");
            copy.read(i, &mut out, IoClass::Metered).unwrap();
            assert_eq!(out, [8u8; 8], "{kind}: clone lost its write");
        }
    }

    #[test]
    fn storage_backend_parses_and_prints() {
        assert_eq!("heap".parse::<StorageBackend>(), Ok(StorageBackend::Heap));
        assert_eq!("FILE".parse::<StorageBackend>(), Ok(StorageBackend::File));
        assert_eq!(" disk ".parse::<StorageBackend>(), Ok(StorageBackend::File));
        assert_eq!("mmap".parse::<StorageBackend>(), Ok(StorageBackend::Mmap));
        assert_eq!(" Map ".parse::<StorageBackend>(), Ok(StorageBackend::Mmap));
        assert!("floppy".parse::<StorageBackend>().is_err());
        assert_eq!(StorageBackend::File.to_string(), "file");
        assert_eq!(StorageBackend::Mmap.to_string(), "mmap");
        assert_eq!(StorageBackend::default(), StorageBackend::Heap);
    }

    #[test]
    fn backend_io_deltas_and_sums() {
        let a = BackendIo {
            bytes_read: 10,
            bytes_written: 4,
            unmetered_bytes_read: 2,
            unmetered_bytes_written: 1,
        };
        let b = BackendIo {
            bytes_read: 25,
            bytes_written: 4,
            unmetered_bytes_read: 6,
            unmetered_bytes_written: 1,
        };
        assert_eq!(
            b.since(&a),
            BackendIo {
                bytes_read: 15,
                bytes_written: 0,
                unmetered_bytes_read: 4,
                unmetered_bytes_written: 0,
            }
        );
        assert_eq!(
            a.plus(&b),
            BackendIo {
                bytes_read: 35,
                bytes_written: 8,
                unmetered_bytes_read: 8,
                unmetered_bytes_written: 2,
            }
        );
        assert_eq!(a.total_bytes(), 17);
    }
}
