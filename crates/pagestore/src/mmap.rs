//! The memory-mapped page backend: frames live in `mmap(MAP_SHARED)`
//! segments of an unlinked temp file.
//!
//! [`MmapBackend`] is the third [`PageBackend`](crate::PageBackend): like
//! [`FileBackend`](crate::FileBackend) the data lives in a real
//! (anonymous, already-unlinked) file, but transfers are `memcpy`s against
//! the kernel page cache instead of `read_at`/`write_at` syscalls, and
//! *residency* of the backing frames is the kernel's to manage — pages the
//! join never revisits can be reclaimed under memory pressure, which is
//! what lets a dataset grow past the configured LRU buffer (and eventually
//! past RAM) while the store above keeps its exact page-access accounting.
//!
//! The mapping is built out of fixed-size **segments** that are never
//! remapped: growing the backend extends the file with
//! [`File::set_len`] and maps one more segment at its own file offset.
//! Existing frame addresses therefore stay stable for the lifetime of the
//! backend, which keeps the implementation free of any remap/copy dance.
//!
//! The bindings are hand-declared `extern "C"` prototypes of the three
//! POSIX calls used (`mmap`, `munmap`, `msync`) — the workspace vendors no
//! libc crate, and the C library is linked into every Rust binary anyway.

use std::fs::File;
use std::os::raw::c_void;
use std::os::unix::io::AsRawFd;

use crate::backend::{anonymous_file, BackendIo, IoClass, PageBackend, StorageBackend};
use crate::error::{IoOp, PageIoError};

mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MS_SYNC: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }
}

const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// Segment file offsets are aligned to this, which must be a multiple of
/// the system page size on every supported platform (covers 4 KiB, 16 KiB
/// and 64 KiB pages).
const SEGMENT_ALIGN: u64 = 1 << 16;

/// Target segment payload before alignment rounding: ~1 MiB of frames per
/// `mmap` call keeps the mapping count low without reserving much ahead.
const SEGMENT_TARGET_BYTES: u64 = 1 << 20;

/// One live `mmap` region covering `frames_per_segment` frames.
#[derive(Debug)]
struct Segment {
    ptr: *mut u8,
    len: usize,
}

/// The memory-mapped backend — see the [module docs](self).
#[derive(Debug)]
pub struct MmapBackend {
    file: File,
    frame_size: usize,
    frames_per_segment: u64,
    /// Aligned byte span one segment occupies in the file (≥
    /// `frames_per_segment × frame_size`, multiple of [`SEGMENT_ALIGN`]).
    segment_span: u64,
    segments: Vec<Segment>,
    written: Vec<bool>,
    io: BackendIo,
}

// SAFETY: the raw segment pointers are exclusively owned by this backend —
// they point into private MAP_SHARED mappings of an unlinked file no other
// code can open. All dereferencing happens in methods taking `&mut self`
// (`read`, `write`) or `&self` without mutation (`flush` via msync), so the
// usual &mut-xor-& aliasing discipline of the owner provides the
// synchronization; the type has no interior mutability.
unsafe impl Send for MmapBackend {}
// SAFETY: same argument as `Send` above — `&MmapBackend` exposes no
// mutation of the mapped memory, so shared references are safe to send.
unsafe impl Sync for MmapBackend {}

impl MmapBackend {
    /// Creates a backend over a fresh anonymous (created, opened, unlinked)
    /// temp file mapped segment by segment as it grows.
    pub fn anonymous(frame_size: usize) -> Self {
        assert!(frame_size > 0, "frame size must be positive");
        let frames_per_segment = (SEGMENT_TARGET_BYTES / frame_size as u64).max(1);
        let payload = frames_per_segment * frame_size as u64;
        let segment_span = payload.div_ceil(SEGMENT_ALIGN) * SEGMENT_ALIGN;
        MmapBackend {
            file: anonymous_file("mmap"),
            frame_size,
            frames_per_segment,
            segment_span,
            segments: Vec::new(),
            written: Vec::new(),
            io: BackendIo::default(),
        }
    }

    /// Extends the file and maps segments until `segment` exists.
    fn ensure_segment(&mut self, segment: usize) {
        while self.segments.len() <= segment {
            let next = self.segments.len() as u64;
            self.file
                .set_len((next + 1) * self.segment_span)
                .expect("grow mmap backing file");
            let len = self.segment_span as usize;
            let offset = (next * self.segment_span) as i64;
            // SAFETY: the file region [offset, offset + len) exists (set_len
            // above), offset is SEGMENT_ALIGN-aligned, and the resulting
            // mapping is recorded so it outlives every pointer derived from
            // it (unmapped only in Drop).
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_SHARED,
                    self.file.as_raw_fd(),
                    offset,
                )
            };
            assert!(
                ptr != MAP_FAILED,
                "mmap segment {next} failed: {}",
                std::io::Error::last_os_error()
            );
            self.segments.push(Segment {
                ptr: ptr as *mut u8,
                len,
            });
        }
    }

    /// Address of frame `index` inside its (already mapped) segment.
    fn frame_ptr(&self, index: u32) -> *mut u8 {
        let segment = (index as u64 / self.frames_per_segment) as usize;
        let slot = index as u64 % self.frames_per_segment;
        let offset = (slot * self.frame_size as u64) as usize;
        debug_assert!(offset + self.frame_size <= self.segments[segment].len);
        // SAFETY: offset stays within the segment mapping (checked above).
        unsafe { self.segments[segment].ptr.add(offset) }
    }
}

impl PageBackend for MmapBackend {
    fn kind(&self) -> StorageBackend {
        StorageBackend::Mmap
    }

    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn allocate(&mut self) -> u32 {
        self.written.push(false);
        (self.written.len() - 1) as u32
    }

    fn read(&mut self, index: u32, frame: &mut [u8], class: IoClass) -> Result<(), PageIoError> {
        assert!(
            self.written.get(index as usize).copied().unwrap_or(false),
            "backend read of a never-written or freed frame"
        );
        assert_eq!(frame.len(), self.frame_size, "frame size mismatch");
        let src = self.frame_ptr(index);
        // SAFETY: src points at frame_size mapped bytes; frame is a
        // distinct (borrow-checked) buffer of the same length.
        unsafe { std::ptr::copy_nonoverlapping(src, frame.as_mut_ptr(), self.frame_size) };
        self.io.record_read(class, self.frame_size as u64);
        Ok(())
    }

    fn write(&mut self, index: u32, frame: &[u8], class: IoClass) -> Result<(), PageIoError> {
        assert_eq!(frame.len(), self.frame_size, "frame size mismatch");
        assert!(
            (index as usize) < self.written.len(),
            "backend write of an unallocated frame"
        );
        self.ensure_segment((index as u64 / self.frames_per_segment) as usize);
        let dst = self.frame_ptr(index);
        // SAFETY: dst points at frame_size mapped bytes exclusively owned
        // through &mut self.
        unsafe { std::ptr::copy_nonoverlapping(frame.as_ptr(), dst, self.frame_size) };
        self.written[index as usize] = true;
        self.io.record_write(class, self.frame_size as u64);
        Ok(())
    }

    fn free(&mut self, index: u32) {
        if let Some(slot) = self.written.get_mut(index as usize) {
            *slot = false;
        }
    }

    fn flush(&mut self) -> Result<(), PageIoError> {
        for seg in self.segments.iter() {
            // SAFETY: (ptr, len) is a live mapping owned by self.
            let rc = unsafe { sys::msync(seg.ptr as *mut c_void, seg.len, sys::MS_SYNC) };
            if rc != 0 {
                let e = std::io::Error::last_os_error();
                return Err(PageIoError::from_io(IoOp::Flush, None, &e));
            }
        }
        Ok(())
    }

    fn io(&self) -> BackendIo {
        self.io
    }

    fn clone_backend(&self) -> Box<dyn PageBackend> {
        // An independent copy: fresh file + mappings, every valid frame
        // copied over. Maintenance traffic, not measured I/O, so the byte
        // counters transfer unchanged instead of growing.
        let mut copy = MmapBackend::anonymous(self.frame_size);
        for (index, &written) in self.written.iter().enumerate() {
            copy.written.push(false);
            if written {
                let index = index as u32;
                copy.ensure_segment((index as u64 / copy.frames_per_segment) as usize);
                let (src, dst) = (self.frame_ptr(index), copy.frame_ptr(index));
                // SAFETY: both point at frame_size mapped bytes in two
                // distinct mappings.
                unsafe { std::ptr::copy_nonoverlapping(src, dst, self.frame_size) };
                copy.written[index as usize] = true;
            }
        }
        copy.io = self.io;
        Box::new(copy)
    }
}

impl Drop for MmapBackend {
    fn drop(&mut self) {
        for seg in &self.segments {
            // SAFETY: (ptr, len) is a live mapping owned by self; after this
            // loop the backend is gone and no pointer into it survives.
            unsafe { sys::munmap(seg.ptr as *mut c_void, seg.len) };
        }
        self.segments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_survive_across_many_segments() {
        // A frame size that does not divide the alignment, and enough
        // frames to span several segments, so segment rounding and
        // per-segment addressing are both exercised.
        let mut b = MmapBackend::anonymous(48);
        // Shrink segments so the test maps several of them cheaply.
        b.frames_per_segment = 7;
        b.segment_span = (7u64 * 48).div_ceil(SEGMENT_ALIGN) * SEGMENT_ALIGN;
        let n = 100u32;
        for i in 0..n {
            assert_eq!(b.allocate(), i);
            let frame = [(i % 251) as u8; 48];
            b.write(i, &frame, IoClass::Metered).unwrap();
        }
        assert!(b.segments.len() > 10, "spans many segments");
        let mut out = [0u8; 48];
        for i in (0..n).rev() {
            b.read(i, &mut out, IoClass::Metered).unwrap();
            assert_eq!(out, [(i % 251) as u8; 48], "frame {i}");
        }
        b.flush().unwrap();
        assert_eq!(b.io().bytes_written, n as u64 * 48);
        assert_eq!(b.io().bytes_read, n as u64 * 48);
    }

    #[test]
    #[should_panic(expected = "never-written")]
    fn mmap_read_before_write_panics() {
        let mut b = MmapBackend::anonymous(8);
        let i = b.allocate();
        let mut out = vec![0u8; 8];
        let _ = b.read(i, &mut out, IoClass::Metered);
    }

    #[test]
    #[should_panic(expected = "never-written")]
    fn mmap_read_after_free_panics() {
        let mut b = MmapBackend::anonymous(8);
        let i = b.allocate();
        b.write(i, &[9u8; 8], IoClass::Metered).unwrap();
        b.free(i);
        let mut out = vec![0u8; 8];
        let _ = b.read(i, &mut out, IoClass::Metered);
    }

    #[test]
    fn backend_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmapBackend>();
    }
}
