//! I/O statistics counters.
//!
//! # Relaxed-consistency contract
//!
//! Every atomic access in this module uses `Ordering::Relaxed`, and that is
//! a deliberate, audited choice — the counters are *pure event counts*:
//! nothing reads a counter to decide control flow, and no other shared
//! memory is published or acquired through them, so there is no
//! happens-before edge for a stronger ordering to establish. Per site:
//!
//! * **Increments** (`record_*`, all `fetch_add(1, Relaxed)`): each counter
//!   has a single total modification order, so relaxed read-modify-writes
//!   never lose events — per-counter totals are exact regardless of thread
//!   interleaving (exercised by `stats_handles_are_send_and_sync`).
//! * **Snapshot loads** ([`IoStats::snapshot`], eight relaxed loads): the
//!   snapshot is *not* an atomic cut — it may tear across counters while
//!   writers are active (a `logical_reads` increment visible while its
//!   paired `buffer_hits` increment is not). Each value is still exact and
//!   monotone. All engine measurement paths snapshot at quiescent points
//!   (the metered coordinator is single-threaded; fast mode keeps local
//!   counts), so they always observe an exact cross-counter cut; only an
//!   external mid-flight sampler sees the torn view.
//! * **Reset stores** ([`IoStats::reset`], relaxed `store(0)`): reset is a
//!   measurement-protocol operation, valid only while no recorder is
//!   running. Racing it against recorders loses no *memory safety*, only
//!   attribution (an increment may land before or after the zeroing) — the
//!   harness never does so.
//!
//! If a future counter ever gates control flow or publishes other data,
//! that site must leave this contract (and upgrade its ordering) rather
//! than stretch it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// One `IoStats` instance is shared (via [`IoStats::clone`], which is a
/// reference-count bump) between the page store, the buffer manager and any
/// algorithm that wants to attribute costs. The experiment harness takes
/// [`IoSnapshot`]s before and after a phase and subtracts them to obtain the
/// phase cost (e.g. MAT vs JOIN in Figure 7).
///
/// The counters are `AtomicU64`-backed (relaxed ordering — they are pure
/// event counts with no synchronisation role), so an `IoStats` handle is
/// `Send + Sync` and concurrent leaf units of the parallel NM-CIJ path can
/// attribute page accesses without data races.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    logical_reads: AtomicU64,
    logical_writes: AtomicU64,
    buffer_hits: AtomicU64,
    cell_cache_hits: AtomicU64,
    cell_cache_misses: AtomicU64,
    cell_cache_evictions: AtomicU64,
}

/// A point-in-time copy of the counters, used to compute per-phase deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Physical page reads (buffer misses).
    pub physical_reads: u64,
    /// Physical page writes (dirty evictions and flushes).
    pub physical_writes: u64,
    /// Logical read requests (hits + misses).
    pub logical_reads: u64,
    /// Logical write requests.
    pub logical_writes: u64,
    /// Logical reads served from the buffer.
    pub buffer_hits: u64,
    /// Voronoi-cell requests served from a `CellCache`-style reuse buffer
    /// (cells are a CPU-side resource, so these do not count as page
    /// accesses — they *avoid* them).
    pub cell_cache_hits: u64,
    /// Voronoi-cell requests that required an exact cell computation.
    pub cell_cache_misses: u64,
    /// Cells evicted from the bounded reuse buffer.
    pub cell_cache_evictions: u64,
}

impl IoSnapshot {
    /// Total physical page accesses (reads + writes) — the paper's cost
    /// metric.
    pub fn page_accesses(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            logical_writes: self.logical_writes.saturating_sub(earlier.logical_writes),
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            cell_cache_hits: self.cell_cache_hits.saturating_sub(earlier.cell_cache_hits),
            cell_cache_misses: self
                .cell_cache_misses
                .saturating_sub(earlier.cell_cache_misses),
            cell_cache_evictions: self
                .cell_cache_evictions
                .saturating_sub(earlier.cell_cache_evictions),
        }
    }

    /// Hit ratio of the Voronoi-cell reuse buffer (0 when it was never
    /// consulted).
    pub fn cell_cache_hit_ratio(&self) -> f64 {
        let total = self.cell_cache_hits + self.cell_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cell_cache_hits as f64 / total as f64
        }
    }

    /// Buffer hit ratio over logical reads (0 when there were none).
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / self.logical_reads as f64
        }
    }
}

impl IoStats {
    /// Creates a fresh set of counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a logical read that missed the buffer (a physical read).
    pub fn record_miss(&self) {
        self.inner.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.inner.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical read served from the buffer.
    pub fn record_hit(&self) {
        self.inner.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.inner.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical write request.
    pub fn record_logical_write(&self) {
        self.inner.logical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page write (dirty eviction or flush).
    pub fn record_physical_write(&self) {
        self.inner.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a Voronoi cell served from a reuse buffer.
    pub fn record_cell_cache_hit(&self) {
        self.inner.cell_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a Voronoi-cell request that had to be computed.
    pub fn record_cell_cache_miss(&self) {
        self.inner.cell_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cell evicted from a bounded reuse buffer.
    pub fn record_cell_cache_eviction(&self) {
        self.inner
            .cell_cache_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values.
    ///
    /// # Consistency contract
    ///
    /// The snapshot is built from eight independent relaxed loads, **not**
    /// an atomic cut across all counters: if other threads are recording
    /// events concurrently, the copy may mix "before" and "after" values of
    /// different counters (e.g. a `logical_reads` increment visible while
    /// its paired `buffer_hits` increment is not). Each individual counter
    /// is still exact and monotonic.
    ///
    /// The engine's measurement paths never rely on cross-counter
    /// atomicity: metered execution funnels all accounting through the
    /// single-threaded coordinator (parallel units record traces that are
    /// replayed sequentially), so every snapshot it takes is quiescent and
    /// therefore exact across counters. Fast-mode execution does not write
    /// shared counters at all — it keeps per-query local read counts. Only
    /// an external observer sampling mid-flight sees the relaxed,
    /// per-counter-exact view described above.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.inner.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.inner.physical_writes.load(Ordering::Relaxed),
            logical_reads: self.inner.logical_reads.load(Ordering::Relaxed),
            logical_writes: self.inner.logical_writes.load(Ordering::Relaxed),
            buffer_hits: self.inner.buffer_hits.load(Ordering::Relaxed),
            cell_cache_hits: self.inner.cell_cache_hits.load(Ordering::Relaxed),
            cell_cache_misses: self.inner.cell_cache_misses.load(Ordering::Relaxed),
            cell_cache_evictions: self.inner.cell_cache_evictions.load(Ordering::Relaxed),
        }
    }

    /// Total physical page accesses so far.
    pub fn page_accesses(&self) -> u64 {
        self.snapshot().page_accesses()
    }

    /// Resets every counter to zero.
    ///
    /// The buffer contents are *not* affected; use this together with
    /// clearing the buffer when a fully cold-start measurement is needed.
    /// Per the module's relaxed-consistency contract, call only at
    /// quiescent points (no concurrent recorders).
    pub fn reset(&self) {
        self.inner.physical_reads.store(0, Ordering::Relaxed);
        self.inner.physical_writes.store(0, Ordering::Relaxed);
        self.inner.logical_reads.store(0, Ordering::Relaxed);
        self.inner.logical_writes.store(0, Ordering::Relaxed);
        self.inner.buffer_hits.store(0, Ordering::Relaxed);
        self.inner.cell_cache_hits.store(0, Ordering::Relaxed);
        self.inner.cell_cache_misses.store(0, Ordering::Relaxed);
        self.inner.cell_cache_evictions.store(0, Ordering::Relaxed);
    }

    /// Whether two handles share the same underlying counters.
    pub fn same_counters(&self, other: &IoStats) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} (logical r/w {}/{}, hits {})",
            self.physical_reads,
            self.physical_writes,
            self.logical_reads,
            self.logical_writes,
            self.buffer_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_miss();
        s.record_miss();
        s.record_hit();
        s.record_logical_write();
        s.record_physical_write();
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.buffer_hits, 1);
        assert_eq!(snap.logical_reads, 3);
        assert_eq!(snap.logical_writes, 1);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.page_accesses(), 3);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        assert!(a.same_counters(&b));
        b.record_miss();
        assert_eq!(a.snapshot().physical_reads, 1);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_miss();
        let before = s.snapshot();
        s.record_miss();
        s.record_hit();
        s.record_physical_write();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.physical_reads, 1);
        assert_eq!(delta.buffer_hits, 1);
        assert_eq!(delta.physical_writes, 1);
        assert_eq!(delta.page_accesses(), 2);
    }

    #[test]
    fn hit_ratio() {
        let s = IoStats::new();
        assert_eq!(s.snapshot().hit_ratio(), 0.0);
        s.record_miss();
        s.record_hit();
        s.record_hit();
        s.record_hit();
        assert!((s.snapshot().hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_miss();
        s.record_physical_write();
        s.record_cell_cache_hit();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn cell_cache_counters_accumulate_and_delta() {
        let s = IoStats::new();
        s.record_cell_cache_miss();
        let before = s.snapshot();
        s.record_cell_cache_hit();
        s.record_cell_cache_hit();
        s.record_cell_cache_miss();
        s.record_cell_cache_eviction();
        let snap = s.snapshot();
        assert_eq!(snap.cell_cache_hits, 2);
        assert_eq!(snap.cell_cache_misses, 2);
        assert_eq!(snap.cell_cache_evictions, 1);
        // Cell-cache traffic never counts as page accesses.
        assert_eq!(snap.page_accesses(), 0);
        assert!((snap.cell_cache_hit_ratio() - 0.5).abs() < 1e-12);
        let delta = snap.since(&before);
        assert_eq!(delta.cell_cache_misses, 1);
        assert_eq!(delta.cell_cache_hits, 2);
        assert_eq!(IoSnapshot::default().cell_cache_hit_ratio(), 0.0);
    }

    #[test]
    fn stats_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IoStats>();

        // Concurrent attribution from several threads lands in one counter
        // set without loss.
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        s.record_miss();
                    }
                });
            }
        });
        assert_eq!(s.snapshot().physical_reads, 4_000);
    }
}
