//! # cij-pagestore
//!
//! The storage substrate of the CIJ reproduction: fixed-size disk pages, an
//! LRU buffer pool with pinning, I/O accounting — and **pluggable
//! page-frame backends**, including an out-of-core memory-mapped one.
//!
//! The paper's evaluation is I/O-centric: every dataset is indexed by an
//! R-tree with a **1 KB page size**, algorithms run on top of an **LRU
//! buffer** whose default capacity is **2 % of the data size on disk**, and
//! the reported cost metric is the number of **page accesses**. This crate
//! provides exactly that substrate, layered as:
//!
//! * [`PageId`] / [`PageStore`] — the page table: routes every logical read
//!   and write through the buffer manager and moves serialized frames
//!   to/from the backend on misses and write-backs. Decoded payloads exist
//!   **only** for buffer members and pinned pages (there is no full
//!   in-memory mirror), so resident memory is bounded by the buffer, not
//!   the dataset; [`PageRef`] is the pin guard handed out by
//!   [`PageStore::peek`] for accounting-free snapshot reads,
//! * [`PagePayload`] (+ [`FrameWriter`]/[`FrameReader`]) — the serialization
//!   contract turning payloads into `page_size`-bounded byte frames, with
//!   [`FrameOverflow`] rejection so node fanout genuinely respects the page
//!   budget,
//! * [`PageBackend`] — the frame-storage trait, selected by
//!   [`StorageBackend`]: [`HeapBackend`] keeps frames in memory (the
//!   historical simulated disk), [`FileBackend`] keeps them in a real file
//!   accessed with positioned I/O, [`MmapBackend`] memory-maps an unlinked
//!   temp file in growable segments so the kernel manages frame residency,
//! * [`LruBuffer`] — an O(1) least-recently-used buffer pool with
//!   write-back semantics and pin/unpin refcounts (pinned pages are exempt
//!   from eviction),
//! * [`IoStats`] — counters for physical reads/writes, logical accesses and
//!   buffer hits, with snapshot/delta helpers used by the experiment harness
//!   to attribute cost to materialisation vs join phases; [`BackendIo`]
//!   carries the backend's *byte* counters alongside, split by [`IoClass`]
//!   into metered transfers (misses, eviction/flush write-backs) and
//!   unmetered maintenance traffic (snapshot decodes, `drop_buffer`
//!   write-backs) — the exact contract lives in the
//!   [backend module docs](backend).
//!
//! ## The backend parity guarantee
//!
//! All accounting decisions — what is a hit, what gets evicted, which
//! counter moves — are made **above** the backend, and the [`PagePayload`]
//! codec is lossless, so heap-, file- and mmap-backed stores driven by the
//! same operations produce *identical* payloads, buffer states, [`IoStats`]
//! counters and even [`BackendIo`] byte counts. The backends differ only in
//! whether the frames actually hit storage. This is asserted at the store
//! level here, and end-to-end (identical join results and page-access
//! totals under `CIJ_STORAGE=file` / `CIJ_STORAGE=mmap`) by the workspace's
//! integration tests — which is what finally lets the paper's counted page
//! accesses be validated against real I/O (`bytes_read == physical_reads ×
//! page_size`, see the `io_validation` and `out_of_core` bench
//! experiments).
//!
//! ## The failure model
//!
//! Real storage fails, and the crate classifies every failure into the
//! three-kind taxonomy of [`PageIoError`] (see the [error module](error)):
//!
//! * **Transient** ([`FaultKind::Transient`]) — interrupted or flaky
//!   operations that may succeed when repeated. Two layers absorb them
//!   before any caller notices: [`FileBackend`] loops its positioned I/O on
//!   short transfers and `EINTR`, and [`PageStore`] retries whole frame
//!   transfers under a bounded [`RetryPolicy`](store::RetryPolicy) with
//!   exponential backoff charged to a **virtual clock**
//!   ([`RetryClock`](store::RetryClock) — deterministic, never a wall
//!   clock). Only an exhausted retry budget surfaces a transient error.
//! * **Persistent** ([`FaultKind::Persistent`]) — the medium or syscall
//!   failed for good; surfaced immediately, never retried.
//! * **Corrupt** ([`FaultKind::Corrupt`]) — the frame transferred but
//!   failed its integrity check. Every frame is sealed on write-back with a
//!   [`FRAME_TRAILER_BYTES`]-byte trailer (payload length + FNV-1a
//!   checksum, [`frame::seal_frame`]) and verified on every cold decode
//!   ([`frame::verify_frame`]), so bit-rot surfaces as a structured error
//!   instead of garbage geometry. A corrupt frame is **quarantined**:
//!   later reads fail fast without re-transferring known-bad bytes.
//!
//! **Query-fatal vs service-fatal.** Trees are immutable while queries run,
//! so the two directions fail differently:
//!
//! * *Read errors are query-fatal*: the fallible read paths
//!   ([`PageStore::try_read`], [`PageStore::try_peek`], …) return the error
//!   to the executor, which fails the one affected query with a structured
//!   terminal frame while the service keeps serving others.
//! * *Write and flush errors are service-fatal*: write-backs happen during
//!   build, eviction and flush — losing a frame there corrupts shared
//!   state, so after retry exhaustion the store panics. The infallible
//!   wrappers ([`PageStore::read`] & co.) serve exactly those build/oracle
//!   paths where any storage failure is fatal by construction.
//!
//! Per-class [`FaultStats`] counters (injected faults, retries, recoveries,
//! quarantined frames) are surfaced by [`PageStore::fault_stats`] alongside
//! [`BackendIo`]. The whole model is testable deterministically through
//! [`FaultBackend`], a wrapper backend injecting faults from a seeded
//! schedule (`CIJ_FAULT_PROFILE` / `CIJ_FAULT_SEED`, see the
//! [fault module](fault)) — under a transient-only schedule every retry
//! recovers and results stay byte-identical to a clean run.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod error;
pub mod fault;
pub mod frame;
pub mod lru;
pub mod mmap;
pub mod stats;
pub mod store;

pub use backend::{BackendIo, FileBackend, HeapBackend, IoClass, PageBackend, StorageBackend};
pub use error::{FaultKind, IoOp, PageIoError};
pub use fault::{FaultBackend, FaultProfile, FaultSpec, FaultStats, DEFAULT_FAULT_SEED};
pub use frame::{FrameOverflow, FrameReader, FrameWriter, PagePayload, FRAME_TRAILER_BYTES};
pub use lru::{Admission, LruBuffer};
pub use mmap::MmapBackend;
pub use stats::{IoSnapshot, IoStats};
pub use store::{
    PageId, PageRef, PageStore, PageStoreConfig, RetryClock, RetryPolicy, VirtualClock,
};

/// Page size used throughout the paper's experiments: 1 KB.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Default buffer size as a fraction of the data size on disk (2 %).
pub const DEFAULT_BUFFER_FRACTION: f64 = 0.02;
