//! # cij-pagestore
//!
//! The storage substrate of the CIJ reproduction: fixed-size disk pages, an
//! LRU buffer pool, I/O accounting — and, since the storage-backend
//! refactor, **pluggable page-frame backends**.
//!
//! The paper's evaluation is I/O-centric: every dataset is indexed by an
//! R-tree with a **1 KB page size**, algorithms run on top of an **LRU
//! buffer** whose default capacity is **2 % of the data size on disk**, and
//! the reported cost metric is the number of **page accesses**. This crate
//! provides exactly that substrate, layered as:
//!
//! * [`PageId`] / [`PageStore`] — the page table: owns decoded payloads,
//!   routes every logical read and write through the buffer manager, and
//!   moves serialized frames to/from the backend on misses and write-backs,
//! * [`PagePayload`] (+ [`FrameWriter`]/[`FrameReader`]) — the serialization
//!   contract turning payloads into `page_size`-bounded byte frames, with
//!   [`FrameOverflow`] rejection so node fanout genuinely respects the page
//!   budget,
//! * [`PageBackend`] — the frame-storage trait, selected by
//!   [`StorageBackend`]: [`HeapBackend`] keeps frames in memory (the
//!   historical simulated disk), [`FileBackend`] keeps them in a real file
//!   accessed with positioned I/O,
//! * [`LruBuffer`] — an O(1) least-recently-used buffer pool with write-back
//!   semantics,
//! * [`IoStats`] — counters for physical reads/writes, logical accesses and
//!   buffer hits, with snapshot/delta helpers used by the experiment harness
//!   to attribute cost to materialisation vs join phases; [`BackendIo`]
//!   carries the backend's *byte* counters alongside.
//!
//! ## The heap/file parity guarantee
//!
//! All accounting decisions — what is a hit, what gets evicted, which
//! counter moves — are made **above** the backend, and the [`PagePayload`]
//! codec is lossless, so a heap-backed and a file-backed store driven by
//! the same operations produce *identical* payloads, buffer states,
//! [`IoStats`] counters and even [`BackendIo`] byte counts. The backends
//! differ only in whether the frames actually hit storage. This is asserted
//! at the store level here, and end-to-end (identical join results and
//! page-access totals under `CIJ_STORAGE=file`) by the workspace's
//! integration tests — which is what finally lets the paper's counted page
//! accesses be validated against real file I/O (`bytes_read ==
//! physical_reads × page_size`, see the `io_validation` bench experiment).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod frame;
pub mod lru;
pub mod stats;
pub mod store;

pub use backend::{BackendIo, FileBackend, HeapBackend, PageBackend, StorageBackend};
pub use frame::{FrameOverflow, FrameReader, FrameWriter, PagePayload};
pub use lru::{Admission, LruBuffer};
pub use stats::{IoSnapshot, IoStats};
pub use store::{PageId, PageStore, PageStoreConfig};

/// Page size used throughout the paper's experiments: 1 KB.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Default buffer size as a fraction of the data size on disk (2 %).
pub const DEFAULT_BUFFER_FRACTION: f64 = 0.02;
