//! # cij-pagestore
//!
//! A simulated disk substrate for the CIJ reproduction.
//!
//! The paper's evaluation is I/O-centric: every dataset is indexed by an
//! R-tree with a **1 KB page size**, algorithms run on top of an **LRU
//! buffer** whose default capacity is **2 % of the data size on disk**, and
//! the reported cost metric is the number of **page accesses**. This crate
//! provides exactly that substrate:
//!
//! * [`PageId`] / [`PageStore`] — an in-memory "disk" of fixed-size pages
//!   that owns page payloads and routes every read and write through the
//!   buffer manager,
//! * [`LruBuffer`] — an O(1) least-recently-used buffer pool with write-back
//!   semantics,
//! * [`IoStats`] — counters for physical reads/writes, logical accesses and
//!   buffer hits, with snapshot/delta helpers used by the experiment harness
//!   to attribute cost to materialisation vs join phases.
//!
//! The store is deliberately *not* persistent: the paper's experiments never
//! rely on durability, only on counting page transfers, so simulating the
//! transfers is the faithful reproduction.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod lru;
pub mod stats;
pub mod store;

pub use lru::{Admission, LruBuffer};
pub use stats::{IoSnapshot, IoStats};
pub use store::{PageId, PageStore, PageStoreConfig};

/// Page size used throughout the paper's experiments: 1 KB.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Default buffer size as a fraction of the data size on disk (2 %).
pub const DEFAULT_BUFFER_FRACTION: f64 = 0.02;
