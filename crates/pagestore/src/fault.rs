//! Deterministic storage fault injection: [`FaultBackend`] wraps any real
//! [`PageBackend`] and injects failures from a seeded schedule.
//!
//! The schedule is a pure function of the explicit [`FaultSpec::seed`] and a
//! per-operation counter — never a clock, never OS randomness — so a faulty
//! run is exactly reproducible and, because every injected transient fault
//! is retried successfully by the store, *byte-identical in its results* to
//! the clean run. That property is what the `fault_storm` bench experiment
//! hard-asserts.
//!
//! Injected faults by profile:
//!
//! * [`FaultProfile::Transient`] — before delegating to the inner backend,
//!   an operation may fail with a transient [`PageIoError`] (a flaky read,
//!   or a short write that moved nothing). No bytes are accounted and the
//!   inner backend is untouched, so the store's one retry performs the one
//!   real transfer and every byte-level invariant survives. The schedule
//!   never injects two consecutive faults ([`FaultBackend::just_failed`]
//!   guard), so a retry budget of two attempts already guarantees progress.
//!   Some operations are additionally charged virtual latency ticks —
//!   recorded in [`FaultStats::injected_latency_ticks`], never slept.
//! * [`FaultProfile::CorruptFrame`] — reads of one chosen frame succeed but
//!   deliver a flipped bit, simulating bit-rot on the medium. The store's
//!   checksum verification turns that into a structured
//!   [`Corrupt`](crate::FaultKind::Corrupt) error and quarantines the frame.
//!
//! The wrapper reports the *inner* backend's [`StorageBackend`] kind, so
//! backend-parity assertions see straight through it.
//!
//! # Environment knobs
//!
//! [`FaultSpec::from_env`] reads `CIJ_FAULT_PROFILE`
//! (`off` | `transient` | `corrupt:<frame>`) and `CIJ_FAULT_SEED` (a `u64`).
//! [`PageStoreConfig::default`](crate::PageStoreConfig) consults it, so
//! `CIJ_FAULT_PROFILE=transient cargo test` runs the whole suite under
//! injected faults — the CI robustness pass.

use crate::backend::{BackendIo, IoClass, PageBackend, StorageBackend};
use crate::error::{IoOp, PageIoError};

/// Counters of injected faults and store-side recovery actions, surfaced by
/// [`PageStore::fault_stats`](crate::PageStore::fault_stats) alongside
/// [`BackendIo`].
///
/// The injection tallies (`injected_*`) come from the [`FaultBackend`]; the
/// recovery tallies (`retries`, `recoveries`, `write_retries`,
/// `quarantined_frames`) are filled in by the store that drives it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read errors injected before the real transfer.
    pub injected_read_faults: u64,
    /// Transient write errors (including simulated short writes) injected
    /// before the real transfer.
    pub injected_write_faults: u64,
    /// Reads that delivered a deliberately flipped bit
    /// ([`FaultProfile::CorruptFrame`]).
    pub injected_bit_flips: u64,
    /// Virtual latency ticks charged to slow operations (recorded, never
    /// slept).
    pub injected_latency_ticks: u64,
    /// Read attempts the store repeated after a transient error.
    pub retries: u64,
    /// Reads that succeeded after at least one retry.
    pub recoveries: u64,
    /// Write attempts the store repeated after a transient error.
    pub write_retries: u64,
    /// Frames quarantined after a checksum failure.
    pub quarantined_frames: u64,
}

/// Which fault schedule a [`FaultBackend`] runs — see the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// No injection; the wrapper is a transparent pass-through.
    #[default]
    Off,
    /// Seeded transient read/write faults plus virtual latency.
    Transient,
    /// Every read of the given frame index delivers one flipped bit.
    CorruptFrame(u32),
}

/// A complete, copyable description of a fault schedule: profile + seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub profile: FaultProfile,
    /// Seed of the deterministic schedule (ignored by
    /// [`FaultProfile::CorruptFrame`], which is unconditional).
    pub seed: u64,
}

/// Seed used when `CIJ_FAULT_SEED` is not set.
pub const DEFAULT_FAULT_SEED: u64 = 0xC1F0_0D5E_ED42_1008;

impl FaultSpec {
    /// A transient-fault schedule with the given seed.
    pub fn transient(seed: u64) -> Self {
        FaultSpec {
            profile: FaultProfile::Transient,
            seed,
        }
    }

    /// A bit-rot schedule corrupting every read of `frame`.
    pub fn corrupt_frame(frame: u32) -> Self {
        FaultSpec {
            profile: FaultProfile::CorruptFrame(frame),
            seed: 0,
        }
    }

    /// Reads `CIJ_FAULT_PROFILE` / `CIJ_FAULT_SEED`; `None` when the
    /// profile is unset, empty or `off`.
    ///
    /// # Panics
    ///
    /// Panics on an unparseable profile or seed — a misconfigured
    /// robustness run should fail loudly, not silently run clean.
    pub fn from_env() -> Option<Self> {
        let profile = std::env::var("CIJ_FAULT_PROFILE").unwrap_or_default();
        let profile = profile.trim().to_ascii_lowercase();
        let seed = match std::env::var("CIJ_FAULT_SEED") {
            Ok(raw) => raw
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|e| panic!("CIJ_FAULT_SEED {raw:?}: {e}")),
            Err(_) => DEFAULT_FAULT_SEED,
        };
        match profile.as_str() {
            "" | "off" | "none" => None,
            "transient" => Some(FaultSpec::transient(seed)),
            other => match other.strip_prefix("corrupt:") {
                Some(frame) => {
                    let frame = frame
                        .trim()
                        .parse::<u32>()
                        .unwrap_or_else(|e| panic!("CIJ_FAULT_PROFILE {other:?}: {e}"));
                    Some(FaultSpec::corrupt_frame(frame))
                }
                None => panic!(
                    "CIJ_FAULT_PROFILE {other:?}: expected \"off\", \"transient\" or \"corrupt:<frame>\""
                ),
            },
        }
    }
}

/// SplitMix64 step: the seeded hash behind the fault schedule. Pure,
/// platform-independent, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One injected fault in sixteen scheduled opportunities.
const FAULT_PERIOD: u64 = 16;

/// The fault-injecting wrapper backend — see the [module docs](self).
#[derive(Debug)]
pub struct FaultBackend {
    inner: Box<dyn PageBackend>,
    spec: FaultSpec,
    /// Distinct op counters keep the read and write schedules independent.
    read_ops: u64,
    write_ops: u64,
    /// Set after an injected fault, cleared by the next clean operation —
    /// guarantees no two consecutive injections, so bounded retry always
    /// converges.
    just_failed: bool,
    stats: FaultStats,
}

impl FaultBackend {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: Box<dyn PageBackend>, spec: FaultSpec) -> Self {
        FaultBackend {
            inner,
            spec,
            read_ops: 0,
            write_ops: 0,
            just_failed: false,
            stats: FaultStats::default(),
        }
    }

    /// The schedule hash for the current operation.
    fn roll(&self, tag: u64, counter: u64) -> u64 {
        splitmix64(self.spec.seed ^ tag.wrapping_mul(0x517C_C1B7_2722_0A95) ^ counter)
    }

    /// Whether the transient schedule fires for this roll (respecting the
    /// no-consecutive-faults guard).
    fn transient_fires(&self, roll: u64) -> bool {
        self.spec.profile == FaultProfile::Transient
            && !self.just_failed
            && roll.is_multiple_of(FAULT_PERIOD)
    }

    /// Charges virtual latency for slow-but-successful operations.
    fn charge_latency(&mut self, roll: u64) {
        if self.spec.profile == FaultProfile::Transient && roll % 31 == 1 {
            self.stats.injected_latency_ticks += 1 + (roll >> 8) % 8;
        }
    }
}

impl PageBackend for FaultBackend {
    fn kind(&self) -> StorageBackend {
        // Transparent: parity checks and store bookkeeping see the real
        // backend kind.
        self.inner.kind()
    }

    fn frame_size(&self) -> usize {
        self.inner.frame_size()
    }

    fn allocate(&mut self) -> u32 {
        self.inner.allocate()
    }

    fn read(&mut self, index: u32, frame: &mut [u8], class: IoClass) -> Result<(), PageIoError> {
        self.read_ops += 1;
        let roll = self.roll(1, self.read_ops);
        if self.transient_fires(roll) {
            self.just_failed = true;
            self.stats.injected_read_faults += 1;
            return Err(PageIoError::transient(
                IoOp::Read,
                Some(index),
                "injected transient read fault",
            ));
        }
        self.just_failed = false;
        self.charge_latency(roll);
        self.inner.read(index, frame, class)?;
        if let FaultProfile::CorruptFrame(bad) = self.spec.profile {
            if bad == index && !frame.is_empty() {
                frame[frame.len() / 2] ^= 0x40;
                self.stats.injected_bit_flips += 1;
            }
        }
        Ok(())
    }

    fn write(&mut self, index: u32, frame: &[u8], class: IoClass) -> Result<(), PageIoError> {
        self.write_ops += 1;
        let roll = self.roll(2, self.write_ops);
        if self.transient_fires(roll) {
            self.just_failed = true;
            self.stats.injected_write_faults += 1;
            // Alternate between a plain flaky write and a simulated short
            // write; both are transient (nothing reached the medium).
            let detail = if roll & 0x100 == 0 {
                format!("injected short write (0 of {} bytes)", frame.len())
            } else {
                "injected transient write fault".to_string()
            };
            return Err(PageIoError::transient(IoOp::Write, Some(index), detail));
        }
        self.just_failed = false;
        self.charge_latency(roll);
        self.inner.write(index, frame, class)
    }

    fn free(&mut self, index: u32) {
        self.inner.free(index);
    }

    fn flush(&mut self) -> Result<(), PageIoError> {
        self.inner.flush()
    }

    fn io(&self) -> BackendIo {
        self.inner.io()
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    fn clone_backend(&self) -> Box<dyn PageBackend> {
        Box::new(FaultBackend {
            inner: self.inner.clone_backend(),
            spec: self.spec,
            read_ops: self.read_ops,
            write_ops: self.write_ops,
            just_failed: self.just_failed,
            stats: self.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::HeapBackend;

    fn transient_over_heap(seed: u64) -> FaultBackend {
        FaultBackend::new(Box::new(HeapBackend::new(16)), FaultSpec::transient(seed))
    }

    /// Drives the same allocate/write/read workload through a backend,
    /// retrying every transient error, and returns (payload checksum,
    /// stats).
    fn drive(b: &mut FaultBackend) -> (u64, FaultStats) {
        let mut digest = 0u64;
        let mut out = [0u8; 16];
        for i in 0..200u32 {
            assert_eq!(b.allocate(), i);
            let frame = [(i % 251) as u8; 16];
            while b.write(i, &frame, IoClass::Metered).is_err() {}
            while b.read(i, &mut out, IoClass::Metered).is_err() {}
            assert_eq!(out, frame, "frame {i} corrupted by a transient fault");
            digest = digest
                .wrapping_mul(31)
                .wrapping_add(crate::frame::fnv1a64(&out));
        }
        (digest, b.fault_stats())
    }

    #[test]
    fn transient_schedule_is_deterministic_and_recoverable() {
        let (d1, s1) = drive(&mut transient_over_heap(42));
        let (d2, s2) = drive(&mut transient_over_heap(42));
        assert_eq!(d1, d2, "same seed, same data");
        assert_eq!(s1, s2, "same seed, same schedule");
        assert!(
            s1.injected_read_faults > 0 && s1.injected_write_faults > 0,
            "schedule actually fired: {s1:?}"
        );
        let (_, other) = drive(&mut transient_over_heap(43));
        assert_ne!(s1, other, "different seed, different schedule");
    }

    #[test]
    fn no_two_consecutive_faults_so_one_retry_always_recovers() {
        let mut b = transient_over_heap(7);
        let frame = [3u8; 16];
        let mut out = [0u8; 16];
        for i in 0..500u32 {
            b.allocate();
            if b.write(i, &frame, IoClass::Metered).is_err() {
                b.write(i, &frame, IoClass::Metered)
                    .expect("second write attempt after an injected fault");
            }
            if b.read(i, &mut out, IoClass::Metered).is_err() {
                b.read(i, &mut out, IoClass::Metered)
                    .expect("second read attempt after an injected fault");
            }
        }
    }

    #[test]
    fn injected_faults_move_no_bytes() {
        let mut b = transient_over_heap(42);
        let (_, stats) = drive(&mut b);
        let io = b.io();
        // Exactly one real transfer per logical op: 200 writes, 200 reads.
        assert_eq!(io.bytes_written, 200 * 16);
        assert_eq!(io.bytes_read, 200 * 16);
        assert!(stats.injected_read_faults + stats.injected_write_faults > 0);
    }

    #[test]
    fn corrupt_profile_flips_one_bit_of_the_target_frame_only() {
        let mut b = FaultBackend::new(Box::new(HeapBackend::new(16)), FaultSpec::corrupt_frame(1));
        let frame = [0u8; 16];
        let mut out = [7u8; 16];
        for i in 0..3u32 {
            b.allocate();
            b.write(i, &frame, IoClass::Metered).unwrap();
        }
        b.read(0, &mut out, IoClass::Metered).unwrap();
        assert_eq!(out, frame, "frame 0 must be intact");
        b.read(1, &mut out, IoClass::Metered).unwrap();
        assert_eq!(out[8], 0x40, "frame 1 carries the flipped bit");
        assert_eq!(b.fault_stats().injected_bit_flips, 1);
        b.read(2, &mut out, IoClass::Metered).unwrap();
        assert_eq!(out, frame, "frame 2 must be intact");
    }

    #[test]
    fn off_profile_is_a_transparent_pass_through() {
        let mut b = FaultBackend::new(
            Box::new(HeapBackend::new(8)),
            FaultSpec {
                profile: FaultProfile::Off,
                seed: 9,
            },
        );
        assert_eq!(b.kind(), StorageBackend::Heap);
        let mut out = [0u8; 8];
        for i in 0..300u32 {
            b.allocate();
            b.write(i, &[1u8; 8], IoClass::Unmetered).unwrap();
            b.read(i, &mut out, IoClass::Unmetered).unwrap();
        }
        assert_eq!(b.fault_stats(), FaultStats::default());
    }

    #[test]
    fn clone_carries_the_schedule_position() {
        let mut b = transient_over_heap(42);
        drive(&mut b);
        let copy = b.clone_backend();
        assert_eq!(copy.fault_stats(), b.fault_stats());
        assert_eq!(copy.kind(), StorageBackend::Heap);
    }
}
