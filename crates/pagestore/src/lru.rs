//! An O(1) least-recently-used buffer pool with pin/unpin refcounts.
//!
//! The buffer tracks which [`PageId`](crate::PageId)s are memory-resident and
//! whether they are dirty. Page *payloads* live in the
//! [`PageStore`](crate::PageStore)'s resident map, so the buffer is purely
//! the replacement-policy and accounting component, exactly the part the
//! paper's experiments vary (Figure 8a sweeps the buffer size from 0.5 % to
//! 10 % of the data size).
//!
//! Pages can additionally be **pinned** ([`LruBuffer::pin`] /
//! [`LruBuffer::unpin`]): a pinned page is never chosen by the eviction
//! scan, whether or not it is currently a buffer member. Pins are reference
//! counts — the store's [`PageRef`](crate::PageRef) guards pin on creation
//! and unpin on drop — and they deliberately survive [`LruBuffer::clear`]
//! and [`LruBuffer::resize`], because clearing the *replacement state* must
//! not invalidate outstanding page references. Pinning does **not** touch
//! recency or membership: peeking at a page leaves the measured buffer state
//! byte-identical, which is what the parity machinery relies on.

use std::collections::HashMap;

/// Slot index inside the intrusive LRU list.
type SlotIdx = usize;

const NIL: SlotIdx = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    key: u64,
    dirty: bool,
    prev: SlotIdx,
    next: SlotIdx,
}

/// A fixed-capacity LRU buffer with write-back semantics and pin refcounts.
///
/// Keys are raw `u64` page identifiers so the buffer stays independent of the
/// page-store types. All operations are O(1) except an eviction scan that
/// has to step over pinned frames (O(pinned members) worst case).
#[derive(Debug, Clone)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<u64, SlotIdx>,
    slots: Vec<Slot>,
    free: Vec<SlotIdx>,
    head: SlotIdx, // most recently used
    tail: SlotIdx, // least recently used
    /// Pin refcounts by key. Pinned keys are exempt from eviction; the map
    /// is independent of LRU membership (a key can be pinned while not
    /// resident) and survives `clear`/`resize`.
    pins: HashMap<u64, u32>,
    /// High-water mark of `pins.len()` — the most distinct keys ever pinned
    /// at once.
    peak_pinned: usize,
}

/// Result of touching a page in the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The page was already resident (a buffer hit).
    Hit,
    /// The page was not resident and has been admitted; if a page had to be
    /// evicted to make room, it is carried here together with its dirty flag.
    Miss {
        /// The evicted page (id, was_dirty), if any.
        evicted: Option<(u64, bool)>,
    },
}

impl LruBuffer {
    /// Creates a buffer holding at most `capacity` pages. A capacity of 0
    /// disables caching entirely (every access is a miss and nothing is
    /// retained).
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            pins: HashMap::new(),
            peak_pinned: 0,
        }
    }

    /// Maximum number of resident pages. Pinned pages can push the actual
    /// membership above this transiently (an admission that finds every
    /// member pinned still admits), but unpinned membership never exceeds
    /// it.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the page is currently resident (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Increments the pin count of `key`, exempting it from eviction until
    /// the matching [`LruBuffer::unpin`]. Recency and membership are not
    /// touched.
    pub fn pin(&mut self, key: u64) {
        *self.pins.entry(key).or_insert(0) += 1;
        self.peak_pinned = self.peak_pinned.max(self.pins.len());
    }

    /// Decrements the pin count of `key`; returns `true` when this released
    /// the last pin (the key is no longer pinned).
    ///
    /// # Panics
    ///
    /// Panics if the key is not pinned — an unpaired unpin means a refcount
    /// bug in the caller.
    pub fn unpin(&mut self, key: u64) -> bool {
        let count = self
            .pins
            .get_mut(&key)
            .unwrap_or_else(|| panic!("unpin of page {key} that holds no pin"));
        *count -= 1;
        if *count == 0 {
            self.pins.remove(&key);
            true
        } else {
            false
        }
    }

    /// Current pin count of `key` (0 when unpinned).
    pub fn pin_count(&self, key: u64) -> u32 {
        self.pins.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct keys currently pinned.
    pub fn pinned_pages(&self) -> usize {
        self.pins.len()
    }

    /// High-water mark of distinct keys pinned at once.
    pub fn peak_pinned(&self) -> usize {
        self.peak_pinned
    }

    /// Drops every pin refcount (used when cloning a store: the clone has no
    /// outstanding page references).
    pub fn reset_pins(&mut self) {
        self.pins.clear();
        self.peak_pinned = 0;
    }

    /// Restarts the pinned high-water mark from the current pin set, so a
    /// new measurement phase tracks its own peak.
    pub fn reset_peak_pinned(&mut self) {
        self.peak_pinned = self.pins.len();
    }

    /// Touches a page for reading or writing, admitting it if necessary and
    /// evicting the least-recently-used *unpinned* page when the buffer is
    /// full.
    ///
    /// `dirty` marks the page as modified (a write access); dirtiness is
    /// sticky until the page is evicted or the buffer is cleared. When every
    /// member is pinned, the page is admitted over capacity with no
    /// eviction — unpinned membership stays bounded by the capacity.
    pub fn touch(&mut self, key: u64, dirty: bool) -> Admission {
        if self.capacity == 0 {
            // Unbuffered mode: every access is a miss; a dirty access is
            // immediately "written back".
            return Admission::Miss {
                evicted: if dirty { Some((key, true)) } else { None },
            };
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].dirty |= dirty;
            self.move_to_front(slot);
            return Admission::Hit;
        }
        let evicted = if self.map.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let slot = self.alloc_slot(key, dirty);
        self.push_front(slot);
        self.map.insert(key, slot);
        Admission::Miss { evicted }
    }

    /// Removes a single page from the buffer without any write-back
    /// accounting (used when a page is freed). Returns `true` when the page
    /// was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(slot) = self.map.remove(&key) {
            self.unlink(slot);
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    /// Drops every resident page — pinned or not; pins protect against
    /// *capacity* eviction, not against the owner discarding its buffer —
    /// returning `(key, was_dirty)` for each so the caller can write back
    /// the dirty ones and release the clean ones. Pin refcounts survive.
    pub fn clear(&mut self) -> Vec<(u64, bool)> {
        let dropped: Vec<(u64, bool)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|&(i, s)| self.map.get(&s.key) == Some(&i))
            .map(|(_, s)| (s.key, s.dirty))
            .collect();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dropped
    }

    /// Changes the capacity. Shrinking evicts LRU pages (skipping pinned
    /// ones); the evicted `(key, was_dirty)` pairs are returned for
    /// write-back accounting.
    pub fn resize(&mut self, capacity: usize) -> Vec<(u64, bool)> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            if let Some(entry) = self.evict_lru() {
                evicted.push(entry);
            } else {
                break;
            }
        }
        evicted
    }

    /// The resident keys ordered from most- to least-recently used.
    /// Intended for tests and diagnostics.
    pub fn keys_mru_to_lru(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur].key);
            cur = self.slots[cur].next;
        }
        out
    }

    fn alloc_slot(&mut self, key: u64, dirty: bool) -> SlotIdx {
        let slot = Slot {
            key,
            dirty,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = slot;
            idx
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        }
    }

    fn push_front(&mut self, slot: SlotIdx) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: SlotIdx) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn move_to_front(&mut self, slot: SlotIdx) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// Evicts the least-recently-used page whose key holds no pin, walking
    /// from the tail towards the head. Returns `None` when every member is
    /// pinned.
    fn evict_lru(&mut self) -> Option<(u64, bool)> {
        let mut cur = self.tail;
        while cur != NIL {
            if self.pin_count(self.slots[cur].key) == 0 {
                let key = self.slots[cur].key;
                let dirty = self.slots[cur].dirty;
                self.unlink(cur);
                self.map.remove(&key);
                self.free.push(cur);
                return Some((key, dirty));
            }
            cur = self.slots[cur].prev;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_admission() {
        let mut b = LruBuffer::new(2);
        assert_eq!(b.touch(1, false), Admission::Miss { evicted: None });
        assert_eq!(b.touch(1, false), Admission::Hit);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.touch(1, false);
        b.touch(2, false);
        // Touch 1 so that 2 becomes LRU.
        b.touch(1, false);
        match b.touch(3, false) {
            Admission::Miss {
                evicted: Some((2, false)),
            } => {}
            other => panic!("expected eviction of page 2, got {other:?}"),
        }
        assert!(b.contains(1));
        assert!(b.contains(3));
        assert!(!b.contains(2));
    }

    #[test]
    fn dirty_flag_is_sticky_and_reported_on_eviction() {
        let mut b = LruBuffer::new(1);
        b.touch(7, true);
        b.touch(7, false); // still dirty
        match b.touch(8, false) {
            Admission::Miss {
                evicted: Some((7, true)),
            } => {}
            other => panic!("expected dirty eviction of page 7, got {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_buffer_never_caches() {
        let mut b = LruBuffer::new(0);
        assert!(matches!(b.touch(1, false), Admission::Miss { .. }));
        assert!(matches!(b.touch(1, false), Admission::Miss { .. }));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut b = LruBuffer::new(3);
        b.touch(1, false);
        b.touch(2, false);
        b.touch(3, false);
        b.touch(1, false);
        assert_eq!(b.keys_mru_to_lru(), vec![1, 3, 2]);
    }

    #[test]
    fn remove_drops_a_single_page() {
        let mut b = LruBuffer::new(4);
        b.touch(1, true);
        b.touch(2, false);
        assert!(b.remove(1));
        assert!(!b.remove(1));
        assert!(!b.contains(1));
        assert!(b.contains(2));
        assert_eq!(b.len(), 1);
        // Freed slot is recycled.
        b.touch(3, false);
        b.touch(4, false);
        b.touch(5, false);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn clear_reports_every_member_with_its_dirty_flag() {
        let mut b = LruBuffer::new(4);
        b.touch(1, true);
        b.touch(2, false);
        b.touch(3, true);
        let mut dropped = b.clear();
        dropped.sort_unstable();
        assert_eq!(dropped, vec![(1, true), (2, false), (3, true)]);
        assert!(b.is_empty());
    }

    #[test]
    fn resize_shrinks_and_evicts() {
        let mut b = LruBuffer::new(4);
        for k in 0..4 {
            b.touch(k, k % 2 == 0);
        }
        let evicted = b.resize(2);
        assert_eq!(b.len(), 2);
        // Pages 0 and 1 are the LRU ones; page 0 was dirty.
        assert_eq!(evicted, vec![(0, true), (1, false)]);
        assert!(b.contains(2) && b.contains(3));
    }

    #[test]
    fn sequential_scan_larger_than_buffer_always_misses() {
        let mut b = LruBuffer::new(10);
        let mut hits = 0;
        for round in 0..3 {
            for k in 0..20u64 {
                if b.touch(k, false) == Admission::Hit {
                    hits += 1;
                }
            }
            // A cyclic scan of 20 pages through a 10-page LRU buffer never
            // hits: by the time a page comes around again it has been evicted.
            assert_eq!(hits, 0, "round {round}");
        }
    }

    #[test]
    fn repeated_working_set_smaller_than_buffer_always_hits_after_warmup() {
        let mut b = LruBuffer::new(10);
        for k in 0..5u64 {
            b.touch(k, false);
        }
        for _ in 0..100 {
            for k in 0..5u64 {
                assert_eq!(b.touch(k, false), Admission::Hit);
            }
        }
    }

    #[test]
    fn pinned_page_is_skipped_by_eviction() {
        let mut b = LruBuffer::new(2);
        b.touch(1, false);
        b.touch(2, false);
        b.pin(1); // 1 is the LRU member but pinned
        match b.touch(3, false) {
            Admission::Miss {
                evicted: Some((2, false)),
            } => {}
            other => panic!("expected eviction to skip pinned 1 and take 2, got {other:?}"),
        }
        assert!(b.contains(1) && b.contains(3));
    }

    #[test]
    fn fully_pinned_buffer_admits_over_capacity() {
        let mut b = LruBuffer::new(2);
        b.touch(1, false);
        b.touch(2, false);
        b.pin(1);
        b.pin(2);
        assert_eq!(b.touch(3, false), Admission::Miss { evicted: None });
        assert_eq!(b.len(), 3, "admitted over capacity, nothing evictable");
        // The unpinned newcomer is the next victim.
        match b.touch(4, false) {
            Admission::Miss {
                evicted: Some((3, false)),
            } => {}
            other => panic!("expected eviction of the unpinned page 3, got {other:?}"),
        }
    }

    #[test]
    fn pin_counts_nest_and_unpin_releases() {
        let mut b = LruBuffer::new(1);
        b.touch(5, false);
        b.pin(5);
        b.pin(5);
        assert_eq!(b.pin_count(5), 2);
        assert!(!b.unpin(5), "one pin still outstanding");
        assert_eq!(b.touch(6, false), Admission::Miss { evicted: None });
        assert!(b.unpin(5), "last pin released");
        assert_eq!(b.pin_count(5), 0);
        // Now 5 is evictable again.
        match b.touch(7, false) {
            Admission::Miss { evicted: Some(_) } => {}
            other => panic!("expected an eviction, got {other:?}"),
        }
    }

    #[test]
    fn pins_survive_clear_and_resize_and_track_the_peak() {
        let mut b = LruBuffer::new(4);
        b.touch(1, true);
        b.pin(1);
        b.pin(2); // pinned while not even a member
        assert_eq!(b.peak_pinned(), 2);
        let dropped = b.clear();
        assert_eq!(dropped, vec![(1, true)]);
        assert_eq!(b.pin_count(1), 1);
        assert_eq!(b.pin_count(2), 1);
        b.touch(1, false);
        let evicted = b.resize(0);
        // capacity 0: resize evicts members, but 1 is pinned.
        assert!(evicted.is_empty());
        assert!(b.contains(1));
        b.reset_pins();
        assert_eq!(b.pinned_pages(), 0);
        assert_eq!(b.peak_pinned(), 0);
    }

    #[test]
    #[should_panic(expected = "holds no pin")]
    fn unpaired_unpin_panics() {
        let mut b = LruBuffer::new(1);
        b.unpin(9);
    }
}
