//! An O(1) least-recently-used buffer pool.
//!
//! The buffer tracks which [`PageId`](crate::PageId)s are memory-resident and
//! whether they are dirty. Page *payloads* live in the
//! [`PageStore`](crate::PageStore) (this is a simulation — nothing is ever
//! really written to disk), so the buffer is purely the replacement-policy
//! and accounting component, exactly the part the paper's experiments vary
//! (Figure 8a sweeps the buffer size from 0.5 % to 10 % of the data size).

use std::collections::HashMap;

/// Slot index inside the intrusive LRU list.
type SlotIdx = usize;

const NIL: SlotIdx = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    key: u64,
    dirty: bool,
    prev: SlotIdx,
    next: SlotIdx,
}

/// A fixed-capacity LRU buffer with write-back semantics.
///
/// Keys are raw `u64` page identifiers so the buffer stays independent of the
/// page-store types. All operations are O(1).
#[derive(Debug, Clone)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<u64, SlotIdx>,
    slots: Vec<Slot>,
    free: Vec<SlotIdx>,
    head: SlotIdx, // most recently used
    tail: SlotIdx, // least recently used
}

/// Result of touching a page in the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The page was already resident (a buffer hit).
    Hit,
    /// The page was not resident and has been admitted; if a page had to be
    /// evicted to make room, it is carried here together with its dirty flag.
    Miss {
        /// The evicted page (id, was_dirty), if any.
        evicted: Option<(u64, bool)>,
    },
}

impl LruBuffer {
    /// Creates a buffer holding at most `capacity` pages. A capacity of 0
    /// disables caching entirely (every access is a miss and nothing is
    /// retained).
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the page is currently resident (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Touches a page for reading or writing, admitting it if necessary and
    /// evicting the least-recently-used page when the buffer is full.
    ///
    /// `dirty` marks the page as modified (a write access); dirtiness is
    /// sticky until the page is evicted or the buffer is cleared.
    pub fn touch(&mut self, key: u64, dirty: bool) -> Admission {
        if self.capacity == 0 {
            // Unbuffered mode: every access is a miss; a dirty access is
            // immediately "written back".
            return Admission::Miss {
                evicted: if dirty { Some((key, true)) } else { None },
            };
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].dirty |= dirty;
            self.move_to_front(slot);
            return Admission::Hit;
        }
        let evicted = if self.map.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let slot = self.alloc_slot(key, dirty);
        self.push_front(slot);
        self.map.insert(key, slot);
        Admission::Miss { evicted }
    }

    /// Removes a single page from the buffer without any write-back
    /// accounting (used when a page is freed). Returns `true` when the page
    /// was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(slot) = self.map.remove(&key) {
            self.unlink(slot);
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    /// Drops every resident page, returning the dirty ones (id list) so the
    /// caller can account for their write-back.
    pub fn clear(&mut self) -> Vec<u64> {
        let dirty: Vec<u64> = self
            .slots
            .iter()
            .enumerate()
            .filter(|&(i, s)| self.map.get(&s.key) == Some(&i) && s.dirty)
            .map(|(_, s)| s.key)
            .collect();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dirty
    }

    /// Changes the capacity. Shrinking evicts LRU pages; the evicted dirty
    /// page ids are returned for write-back accounting.
    pub fn resize(&mut self, capacity: usize) -> Vec<u64> {
        self.capacity = capacity;
        let mut written = Vec::new();
        while self.map.len() > self.capacity {
            if let Some((key, dirty)) = self.evict_lru() {
                if dirty {
                    written.push(key);
                }
            } else {
                break;
            }
        }
        written
    }

    /// The resident keys ordered from most- to least-recently used.
    /// Intended for tests and diagnostics.
    pub fn keys_mru_to_lru(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur].key);
            cur = self.slots[cur].next;
        }
        out
    }

    fn alloc_slot(&mut self, key: u64, dirty: bool) -> SlotIdx {
        let slot = Slot {
            key,
            dirty,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = slot;
            idx
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        }
    }

    fn push_front(&mut self, slot: SlotIdx) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: SlotIdx) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn move_to_front(&mut self, slot: SlotIdx) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn evict_lru(&mut self) -> Option<(u64, bool)> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.slots[slot].key;
        let dirty = self.slots[slot].dirty;
        self.unlink(slot);
        self.map.remove(&key);
        self.free.push(slot);
        Some((key, dirty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_admission() {
        let mut b = LruBuffer::new(2);
        assert_eq!(b.touch(1, false), Admission::Miss { evicted: None });
        assert_eq!(b.touch(1, false), Admission::Hit);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.touch(1, false);
        b.touch(2, false);
        // Touch 1 so that 2 becomes LRU.
        b.touch(1, false);
        match b.touch(3, false) {
            Admission::Miss {
                evicted: Some((2, false)),
            } => {}
            other => panic!("expected eviction of page 2, got {other:?}"),
        }
        assert!(b.contains(1));
        assert!(b.contains(3));
        assert!(!b.contains(2));
    }

    #[test]
    fn dirty_flag_is_sticky_and_reported_on_eviction() {
        let mut b = LruBuffer::new(1);
        b.touch(7, true);
        b.touch(7, false); // still dirty
        match b.touch(8, false) {
            Admission::Miss {
                evicted: Some((7, true)),
            } => {}
            other => panic!("expected dirty eviction of page 7, got {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_buffer_never_caches() {
        let mut b = LruBuffer::new(0);
        assert!(matches!(b.touch(1, false), Admission::Miss { .. }));
        assert!(matches!(b.touch(1, false), Admission::Miss { .. }));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut b = LruBuffer::new(3);
        b.touch(1, false);
        b.touch(2, false);
        b.touch(3, false);
        b.touch(1, false);
        assert_eq!(b.keys_mru_to_lru(), vec![1, 3, 2]);
    }

    #[test]
    fn remove_drops_a_single_page() {
        let mut b = LruBuffer::new(4);
        b.touch(1, true);
        b.touch(2, false);
        assert!(b.remove(1));
        assert!(!b.remove(1));
        assert!(!b.contains(1));
        assert!(b.contains(2));
        assert_eq!(b.len(), 1);
        // Freed slot is recycled.
        b.touch(3, false);
        b.touch(4, false);
        b.touch(5, false);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn clear_reports_dirty_pages() {
        let mut b = LruBuffer::new(4);
        b.touch(1, true);
        b.touch(2, false);
        b.touch(3, true);
        let mut dirty = b.clear();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![1, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn resize_shrinks_and_evicts() {
        let mut b = LruBuffer::new(4);
        for k in 0..4 {
            b.touch(k, k % 2 == 0);
        }
        let written = b.resize(2);
        assert_eq!(b.len(), 2);
        // Pages 0 and 1 are the LRU ones; page 0 was dirty.
        assert_eq!(written, vec![0]);
        assert!(b.contains(2) && b.contains(3));
    }

    #[test]
    fn sequential_scan_larger_than_buffer_always_misses() {
        let mut b = LruBuffer::new(10);
        let mut hits = 0;
        for round in 0..3 {
            for k in 0..20u64 {
                if b.touch(k, false) == Admission::Hit {
                    hits += 1;
                }
            }
            // A cyclic scan of 20 pages through a 10-page LRU buffer never
            // hits: by the time a page comes around again it has been evicted.
            assert_eq!(hits, 0, "round {round}");
        }
    }

    #[test]
    fn repeated_working_set_smaller_than_buffer_always_hits_after_warmup() {
        let mut b = LruBuffer::new(10);
        for k in 0..5u64 {
            b.touch(k, false);
        }
        for _ in 0..100 {
            for k in 0..5u64 {
                assert_eq!(b.touch(k, false), Admission::Hit);
            }
        }
    }
}
