//! The page store: fixed-size page frames behind an LRU buffer, over a
//! pluggable [`PageBackend`].

use crate::backend::{BackendIo, PageBackend, StorageBackend};
use crate::frame::PagePayload;
use crate::lru::{Admission, LruBuffer};
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

/// Identifier of a page on the (simulated or real) disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    fn as_key(self) -> u64 {
        u64::from(self.0)
    }
}

/// Configuration of a [`PageStore`].
#[derive(Debug, Clone, Copy)]
pub struct PageStoreConfig {
    /// Size of a disk page in bytes. Doubles as the frame size of the
    /// backend and as the byte budget clients use to derive node fanout.
    pub page_size: usize,
    /// Number of pages the LRU buffer can hold.
    pub buffer_pages: usize,
    /// Which storage backend holds the page frames.
    pub backend: StorageBackend,
}

impl Default for PageStoreConfig {
    /// A generic default: 4 KB pages (a typical OS page size), no buffer,
    /// heap frames. The paper's experimental setting is deliberately *not*
    /// the default — use [`PageStoreConfig::paper_default`] for that.
    fn default() -> Self {
        PageStoreConfig {
            page_size: 4096,
            buffer_pages: 0,
            backend: StorageBackend::Heap,
        }
    }
}

impl PageStoreConfig {
    /// The paper's experimental setting: **1 KB pages**
    /// ([`DEFAULT_PAGE_SIZE`]), explicitly distinct from the generic
    /// [`Default`] (4 KB).
    ///
    /// The paper sizes the LRU buffer *relative to the data*: "2 % of the
    /// data size" ([`crate::DEFAULT_BUFFER_FRACTION`]). Since the data size
    /// is unknown until pages are allocated, `buffer_pages` starts at 0 here
    /// and the buffer is sized after loading via
    /// [`PageStore::set_buffer_fraction`] (or
    /// [`PageStore::set_default_buffer`]) — that call is part of the
    /// convention, not optional.
    pub fn paper_default() -> Self {
        PageStoreConfig {
            page_size: DEFAULT_PAGE_SIZE,
            buffer_pages: 0,
            backend: StorageBackend::Heap,
        }
    }

    /// Sets the buffer capacity in pages.
    pub fn with_buffer_pages(mut self, pages: usize) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// Sets the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Sets the storage backend.
    pub fn with_backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// A disk of fixed-size pages with an LRU buffer in front of it.
///
/// Payloads of type `T` (R-tree nodes, in practice) are serialized through
/// the [`PagePayload`] codec into `page_size`-byte frames held by the
/// configured [`PageBackend`]; a payload whose encoding exceeds the page
/// size is rejected at allocate/write time, so fanout budgets cannot be
/// silently violated. [`PageStore::read`] returns owned payloads so that
/// callers never hold borrows across further store operations (pages can be
/// evicted under you, exactly like a real buffer pool).
///
/// # Read/write path and the heap/file parity guarantee
///
/// * Logical reads go through the LRU buffer: a **hit** is served from the
///   in-memory image, a **miss** transfers the frame from the backend and
///   decodes it — on the [`FileBackend`](crate::backend::FileBackend) this
///   is a real positioned read, and the decoded bytes (not the in-memory
///   image) are what the caller gets.
/// * Writes are **write-back**: allocate/write dirty the buffered page; the
///   frame is encoded and written to the backend when the page is evicted
///   or on [`PageStore::flush`].
///
/// All accounting ([`IoStats`], buffer state, eviction decisions) happens
/// *above* the backend, so swapping [`StorageBackend::Heap`] for
/// [`StorageBackend::File`] changes no counter and no result — only whether
/// the frames actually hit storage, measured by [`PageStore::backend_io`].
///
/// The store also keeps a decoded in-memory image of every page. Besides
/// serving buffer hits, it backs [`PageStore::peek`] — the uncounted
/// snapshot reads used by oracles and by the parallel NM-CIJ workers whose
/// accounting is deferred to [`PageStore::note_read`] replay.
#[derive(Debug)]
pub struct PageStore<T: PagePayload> {
    pages: Vec<Option<T>>,
    backend: Box<dyn PageBackend>,
    buffer: LruBuffer,
    stats: IoStats,
    /// Scratch frame (always `page_size` bytes) for encode/decode transfers.
    frame: Vec<u8>,
}

impl<T: PagePayload> Clone for PageStore<T> {
    fn clone(&self) -> Self {
        PageStore {
            pages: self.pages.clone(),
            backend: self.backend.clone_backend(),
            buffer: self.buffer.clone(),
            // Shared counters, like every other handle copy.
            stats: self.stats.clone(),
            frame: self.frame.clone(),
        }
    }
}

impl<T: PagePayload> PageStore<T> {
    /// Creates an empty store with the given configuration and fresh
    /// statistics counters.
    pub fn new(config: PageStoreConfig) -> Self {
        Self::with_stats(config, IoStats::new())
    }

    /// Creates a store that shares statistics counters with `stats`.
    ///
    /// The CIJ join algorithms operate on two (or more) trees at once but the
    /// paper reports a single page-access figure, so the trees' stores share
    /// one counter set.
    pub fn with_stats(config: PageStoreConfig, stats: IoStats) -> Self {
        assert!(config.page_size > 0, "page size must be positive");
        PageStore {
            pages: Vec::new(),
            backend: config.backend.create(config.page_size),
            buffer: LruBuffer::new(config.buffer_pages),
            stats,
            frame: vec![0u8; config.page_size],
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.backend.frame_size()
    }

    /// Which storage backend holds this store's frames.
    pub fn backend_kind(&self) -> StorageBackend {
        self.backend.kind()
    }

    /// Bytes actually transferred to/from the backend so far — the physical
    /// counterpart of the [`IoStats`] page-access counts.
    pub fn backend_io(&self) -> BackendIo {
        self.backend.io()
    }

    /// Number of allocated pages (the data size on disk, in pages).
    pub fn num_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// A handle to the shared statistics counters.
    pub fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    /// Allocates a new page containing `payload` and returns its id.
    ///
    /// Allocation counts as a logical write; the physical write happens when
    /// the page is evicted from the buffer (write-back) or on
    /// [`PageStore::flush`].
    ///
    /// # Panics
    ///
    /// Panics with a [`FrameOverflow`](crate::FrameOverflow) message if the
    /// payload's encoding does not fit one page.
    pub fn allocate(&mut self, payload: T) -> PageId {
        self.check_fits(&payload);
        let index = self.backend.allocate();
        debug_assert_eq!(
            index as usize,
            self.pages.len(),
            "backend frame index drifted from the page table"
        );
        let id = PageId(index);
        self.pages.push(Some(payload));
        self.stats.record_logical_write();
        self.admit(id, true);
        id
    }

    /// Reads the payload of a page, going through the buffer. A miss
    /// transfers the frame from the backend and decodes it; a hit is served
    /// from the in-memory image.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist — that is a logic error in the
    /// caller (dangling `PageId`), not a runtime condition to handle.
    pub fn read(&mut self, id: PageId) -> T {
        assert!(self.is_allocated(id), "read of unallocated page");
        match self.buffer.touch(id.as_key(), false) {
            Admission::Hit => {
                self.stats.record_hit();
                self.pages[id.0 as usize]
                    .clone()
                    .expect("read of unallocated page")
            }
            Admission::Miss { evicted } => {
                self.stats.record_miss();
                self.handle_eviction(evicted);
                self.fetch(id)
            }
        }
    }

    /// Reads a page by reference, going through the buffer with accounting
    /// identical to [`PageStore::read`] — but serving the visitor from the
    /// decoded in-memory image instead of cloning (hit) or re-decoding
    /// (miss) the payload.
    ///
    /// On a miss the frame is still physically transferred from the backend
    /// (so [`PageStore::backend_io`] byte counters match `read` exactly) and,
    /// in debug builds, compared against the re-encoded image — the same
    /// consistency check [`PageStore::note_read`] performs. This is the
    /// zero-copy decode path behind arena-based node visits in `cij-rtree`:
    /// pages land straight in the caller's flat buffers with no intermediate
    /// payload allocation.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist, like [`PageStore::read`].
    pub fn read_with<R>(&mut self, id: PageId, f: impl FnOnce(&T) -> R) -> R {
        assert!(self.is_allocated(id), "read of unallocated page");
        match self.buffer.touch(id.as_key(), false) {
            Admission::Hit => self.stats.record_hit(),
            Admission::Miss { evicted } => {
                self.stats.record_miss();
                self.handle_eviction(evicted);
                self.backend.read(id.0, &mut self.frame);
                #[cfg(debug_assertions)]
                {
                    let expected = self.pages[id.0 as usize]
                        .as_ref()
                        .expect("read of unallocated page")
                        .encode();
                    assert_eq!(
                        &self.frame[..expected.len()],
                        &expected[..],
                        "transferred frame of page {id:?} drifted from the image"
                    );
                }
            }
        }
        f(self.pages[id.0 as usize]
            .as_ref()
            .expect("read of unallocated page"))
    }

    /// Overwrites the payload of an existing page, going through the buffer.
    ///
    /// # Panics
    ///
    /// Panics on unallocated pages and on payloads that exceed the page size
    /// (see [`PageStore::allocate`]).
    pub fn write(&mut self, id: PageId, payload: T) {
        assert!(self.is_allocated(id), "write to unallocated page");
        self.check_fits(&payload);
        self.pages[id.0 as usize] = Some(payload);
        self.stats.record_logical_write();
        self.admit(id, true);
    }

    /// Accounts for a logical read of `id` **without** returning the
    /// payload: the buffer is touched and the hit or miss recorded exactly
    /// as [`PageStore::read`] would — including the physical frame transfer
    /// on a miss, so backend byte counters replay identically too.
    ///
    /// This is the deferred-accounting hook of the parallel NM-CIJ path:
    /// workers read from the snapshot ([`PageStore::peek`]) and record page
    /// ids; the coordinator replays each trace here in sequential leaf
    /// order (through `RTree::replay_read` in `cij-rtree`, a thin wrapper
    /// over this method — this doc is the authoritative one).
    ///
    /// In debug builds the transferred frame is additionally compared
    /// against the re-encoded snapshot payload, catching trace/snapshot
    /// drift at the first diverging page.
    ///
    /// # Panics
    ///
    /// Panics if the replayed page id does not exist (trace drift), like
    /// [`PageStore::read`].
    pub fn note_read(&mut self, id: PageId) {
        assert!(self.is_allocated(id), "note_read of unallocated page");
        match self.buffer.touch(id.as_key(), false) {
            Admission::Hit => self.stats.record_hit(),
            Admission::Miss { evicted } => {
                self.stats.record_miss();
                self.handle_eviction(evicted);
                self.backend.read(id.0, &mut self.frame);
                #[cfg(debug_assertions)]
                {
                    let expected = self.pages[id.0 as usize]
                        .as_ref()
                        .expect("note_read of unallocated page")
                        .encode();
                    assert_eq!(
                        &self.frame[..expected.len()],
                        &expected[..],
                        "replayed frame of page {id:?} drifted from the snapshot"
                    );
                }
            }
        }
    }

    /// Reads a page **without** touching the buffer, the backend or the
    /// counters — straight from the decoded in-memory image.
    ///
    /// Used only for assertions, in-memory oracles and the snapshot reads of
    /// the parallel execution path; never by the algorithms being measured.
    pub fn peek(&self, id: PageId) -> &T {
        self.pages[id.0 as usize]
            .as_ref()
            .expect("peek of unallocated page")
    }

    /// Frees a page: it no longer counts towards [`PageStore::num_pages`],
    /// is dropped from the buffer without write-back accounting, and its
    /// backend frame is released.
    ///
    /// Used by the R-tree bulk loader to discard the placeholder root of an
    /// initially-empty tree once the packed root replaces it. Freed page ids
    /// are not recycled.
    pub fn free(&mut self, id: PageId) {
        if let Some(slot) = self.pages.get_mut(id.0 as usize) {
            *slot = None;
            self.buffer.remove(id.as_key());
            self.backend.free(id.0);
        }
    }

    /// Writes back every dirty buffered page, empties the buffer and flushes
    /// the backend.
    pub fn flush(&mut self) {
        for key in self.buffer.clear() {
            self.write_back(key);
            self.stats.record_physical_write();
        }
        self.backend.flush();
    }

    /// Empties the buffer *without* counting write-backs. Useful to make
    /// separate measurements start cold without attributing the previous
    /// phase's dirty pages to the next one.
    ///
    /// The dirty frames are still physically written (data must survive on a
    /// real backend — a later cold read serves them from storage); only the
    /// [`IoStats`] accounting is skipped, by design of the measurement
    /// convention.
    pub fn drop_buffer(&mut self) {
        for key in self.buffer.clear() {
            self.write_back(key);
        }
    }

    /// Resizes the buffer to `pages` pages, accounting for the write-back of
    /// any dirty pages that get evicted by a shrink. (Growing keeps all
    /// resident pages; [`LruBuffer::resize`] handles both directions.)
    pub fn set_buffer_pages(&mut self, pages: usize) {
        for key in self.buffer.resize(pages) {
            self.write_back(key);
            self.stats.record_physical_write();
        }
    }

    /// Sets the buffer capacity to `fraction` of the current data size on
    /// disk (in pages), the way the paper expresses buffer sizes ("2 % of the
    /// data size"). At least one page is kept whenever `fraction > 0` — even
    /// when the store is so small that the fraction rounds to zero pages.
    pub fn set_buffer_fraction(&mut self, fraction: f64) {
        let pages = if fraction <= 0.0 {
            0
        } else {
            ((self.num_pages() as f64 * fraction).ceil() as usize).max(1)
        };
        self.set_buffer_pages(pages);
    }

    /// The paper's default buffer: 2 % of the data size.
    pub fn set_default_buffer(&mut self) {
        self.set_buffer_fraction(crate::DEFAULT_BUFFER_FRACTION);
    }

    /// Current buffer capacity in pages.
    pub fn buffer_pages(&self) -> usize {
        self.buffer.capacity()
    }

    fn is_allocated(&self, id: PageId) -> bool {
        self.pages
            .get(id.0 as usize)
            .map(|p| p.is_some())
            .unwrap_or(false)
    }

    fn check_fits(&self, payload: &T) {
        if let Err(overflow) = payload.check_frame(self.page_size()) {
            panic!("{overflow}");
        }
    }

    /// Transfers the frame of `id` from the backend and decodes it.
    fn fetch(&mut self, id: PageId) -> T {
        self.backend.read(id.0, &mut self.frame);
        T::decode(&self.frame)
    }

    /// Encodes the in-memory image of a page into a zero-padded frame and
    /// writes it to the backend. Reuses the scratch frame across calls —
    /// no allocation on the eviction path.
    fn write_back(&mut self, key: u64) {
        let page_size = self.frame.len();
        let mut frame = std::mem::take(&mut self.frame);
        frame.clear();
        self.pages[key as usize]
            .as_ref()
            .expect("write-back of unallocated page")
            .encode_into(&mut frame);
        frame.resize(page_size, 0); // zero padding up to the page size
        self.backend.write(key as u32, &frame);
        self.frame = frame;
    }

    fn admit(&mut self, id: PageId, dirty: bool) {
        match self.buffer.touch(id.as_key(), dirty) {
            Admission::Hit => {}
            Admission::Miss { evicted } => {
                self.handle_eviction(evicted);
            }
        }
    }

    fn handle_eviction(&mut self, evicted: Option<(u64, bool)>) {
        if let Some((key, dirty)) = evicted {
            if dirty {
                self.write_back(key);
                self.stats.record_physical_write();
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn buffer_keys_mru_to_lru(&self) -> Vec<u64> {
        self.buffer.keys_mru_to_lru()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(buffer_pages: usize) -> PageStore<u32> {
        store_on(buffer_pages, StorageBackend::Heap)
    }

    fn store_on(buffer_pages: usize, backend: StorageBackend) -> PageStore<u32> {
        PageStore::new(
            PageStoreConfig::default()
                .with_buffer_pages(buffer_pages)
                .with_backend(backend),
        )
    }

    #[test]
    fn allocate_and_read_roundtrip() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(10);
            let b = s.allocate(20);
            assert_eq!(s.read(a), 10);
            assert_eq!(s.read(b), 20);
            assert_eq!(s.num_pages(), 2);
            assert_eq!(s.backend_kind(), backend);
        }
    }

    #[test]
    fn buffered_reads_hit_after_first_access() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(1);
            s.drop_buffer();
            s.stats().reset();
            s.read(a);
            s.read(a);
            s.read(a);
            let snap = s.stats().snapshot();
            assert_eq!(snap.physical_reads, 1);
            assert_eq!(snap.buffer_hits, 2);
        }
    }

    #[test]
    fn unbuffered_store_counts_every_read() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(0, backend);
            let a = s.allocate(1);
            s.stats().reset();
            for _ in 0..5 {
                assert_eq!(s.read(a), 1);
            }
            assert_eq!(s.stats().snapshot().physical_reads, 5);
        }
    }

    #[test]
    fn write_back_counts_on_eviction() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(1, backend);
            let a = s.allocate(1); // dirty in buffer
            let _b = s.allocate(2); // evicts a (dirty) -> physical write
            let snap = s.stats().snapshot();
            assert_eq!(snap.physical_writes, 1);
            assert_eq!(snap.logical_writes, 2);
            // Reading a again is a miss served from the backend frame.
            s.stats().reset();
            assert_eq!(s.read(a), 1);
            assert_eq!(s.stats().snapshot().physical_reads, 1);
        }
    }

    #[test]
    fn flush_writes_dirty_pages_once() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(10, backend);
            for i in 0..5 {
                s.allocate(i);
            }
            s.flush();
            let snap = s.stats().snapshot();
            assert_eq!(snap.physical_writes, 5);
            // A second flush has nothing left to write.
            s.flush();
            assert_eq!(s.stats().snapshot().physical_writes, 5);
        }
    }

    #[test]
    fn write_updates_payload() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(2, backend);
            let a = s.allocate(1);
            s.write(a, 42);
            assert_eq!(s.read(a), 42);
            assert_eq!(*s.peek(a), 42);
            // The overwrite survives eviction and a cold backend read.
            s.drop_buffer();
            assert_eq!(s.read(a), 42);
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let mut s = store(2);
        let a = s.allocate(1);
        let _ = s.read(PageId(a.0 + 7));
    }

    #[test]
    fn note_read_replays_exactly_like_read() {
        // Two stores with identical contents: replaying a page-id trace via
        // note_read must leave counters, buffer state and backend byte
        // counters identical to performing the reads directly.
        for backend in StorageBackend::ALL {
            let mut live = store_on(2, backend);
            let mut replay = store_on(2, backend);
            let ids: Vec<PageId> = (0..4).map(|i| live.allocate(i)).collect();
            for i in 0..4 {
                replay.allocate(i);
            }
            live.stats().reset();
            replay.stats().reset();
            let trace = [ids[0], ids[1], ids[0], ids[2], ids[3], ids[1], ids[0]];
            for &id in &trace {
                let _ = live.read(id);
            }
            for &id in &trace {
                replay.note_read(id);
            }
            assert_eq!(live.stats().snapshot(), replay.stats().snapshot());
            assert_eq!(
                live.buffer_keys_mru_to_lru(),
                replay.buffer_keys_mru_to_lru()
            );
            assert_eq!(live.backend_io(), replay.backend_io());
        }
    }

    #[test]
    fn read_with_accounts_exactly_like_read() {
        // Same trace through read on one store and read_with on another:
        // payloads, counters, buffer state and backend bytes must match.
        for backend in StorageBackend::ALL {
            let mut by_value = store_on(2, backend);
            let mut by_ref = store_on(2, backend);
            let ids: Vec<PageId> = (0..4).map(|i| by_value.allocate(i * 3)).collect();
            for i in 0..4 {
                by_ref.allocate(i * 3);
            }
            by_value.stats().reset();
            by_ref.stats().reset();
            let trace = [ids[0], ids[1], ids[0], ids[2], ids[3], ids[1], ids[0]];
            for &id in &trace {
                let expected = by_value.read(id);
                let got = by_ref.read_with(id, |v| *v);
                assert_eq!(got, expected);
            }
            assert_eq!(by_value.stats().snapshot(), by_ref.stats().snapshot());
            assert_eq!(
                by_value.buffer_keys_mru_to_lru(),
                by_ref.buffer_keys_mru_to_lru()
            );
            assert_eq!(by_value.backend_io(), by_ref.backend_io());
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn note_read_of_unallocated_page_panics() {
        let mut s = store(2);
        let a = s.allocate(1);
        s.note_read(PageId(a.0 + 9));
    }

    #[test]
    fn free_removes_page_from_count_and_buffer() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(1);
            let b = s.allocate(2);
            assert_eq!(s.num_pages(), 2);
            s.free(a);
            assert_eq!(s.num_pages(), 1);
            // The freed (dirty) page is not written back on flush.
            s.flush();
            assert_eq!(s.stats().snapshot().physical_writes, 1);
            assert_eq!(s.read(b), 2);
        }
    }

    #[test]
    fn buffer_fraction_sizing() {
        let mut s = store(0);
        for i in 0..100 {
            s.allocate(i);
        }
        s.set_buffer_fraction(0.02);
        assert_eq!(s.buffer_pages(), 2);
        s.set_buffer_fraction(0.005);
        assert_eq!(s.buffer_pages(), 1);
        s.set_buffer_fraction(0.0);
        assert_eq!(s.buffer_pages(), 0);
    }

    #[test]
    fn zero_fraction_disables_the_buffer_entirely() {
        let mut s = store(8);
        let a = s.allocate(7);
        s.set_buffer_fraction(0.0);
        assert_eq!(s.buffer_pages(), 0);
        s.stats().reset();
        s.read(a);
        s.read(a);
        // Every read is a miss once the buffer is gone.
        assert_eq!(s.stats().snapshot().physical_reads, 2);
        assert_eq!(s.stats().snapshot().buffer_hits, 0);
    }

    #[test]
    fn tiny_store_fractions_round_up_to_one_page() {
        // On stores so small that fraction * pages rounds to zero, a
        // positive fraction must still keep one buffer page.
        let mut s = store(0);
        s.allocate(1);
        s.set_buffer_fraction(0.001);
        assert_eq!(s.buffer_pages(), 1);
        // Even an empty store gets the one-page floor for fraction > 0 —
        // the buffer exists before data does.
        let mut empty = store(0);
        empty.set_buffer_fraction(0.5);
        assert_eq!(empty.buffer_pages(), 1);
    }

    #[test]
    fn refraction_after_growth_tracks_the_new_data_size() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(0, backend);
            for i in 0..50 {
                s.allocate(i);
            }
            s.set_buffer_fraction(0.1);
            assert_eq!(s.buffer_pages(), 5);
            // Re-apply the fraction after the store grew: capacity follows
            // the new num_pages.
            for i in 50..150 {
                s.allocate(i);
            }
            s.set_buffer_fraction(0.1);
            assert_eq!(s.buffer_pages(), 15);
            // Fill the buffer with dirty pages, then shrink: the evicted
            // dirty pages must be written back and accounted.
            for i in 0..15u32 {
                s.write(PageId(i), i * 3);
            }
            s.stats().reset();
            s.set_buffer_fraction(0.02); // 150 * 0.02 = 3 pages, shrink by 12
            assert_eq!(s.buffer_pages(), 3);
            assert_eq!(
                s.stats().snapshot().physical_writes,
                12,
                "shrink must write back exactly the evicted dirty pages"
            );
            // Data survives the churn.
            assert_eq!(s.read(PageId(0)), 0);
            assert_eq!(s.read(PageId(149)), 149);
        }
    }

    #[test]
    fn shared_stats_between_stores() {
        let stats = IoStats::new();
        let mut p: PageStore<u32> =
            PageStore::with_stats(PageStoreConfig::default(), stats.clone());
        let mut q: PageStore<u32> =
            PageStore::with_stats(PageStoreConfig::default(), stats.clone());
        let a = p.allocate(1);
        let b = q.allocate(2);
        p.read(a);
        q.read(b);
        assert_eq!(stats.snapshot().physical_reads, 2);
    }

    #[test]
    fn grow_buffer_preserves_cached_pages() {
        let mut s = store(2);
        let a = s.allocate(1);
        let b = s.allocate(2);
        s.set_buffer_pages(8);
        s.stats().reset();
        s.read(a);
        s.read(b);
        // Both pages were resident before the grow and must still hit.
        assert_eq!(s.stats().snapshot().buffer_hits, 2);
    }

    #[test]
    fn paper_default_differs_from_generic_default() {
        let paper = PageStoreConfig::paper_default();
        let generic = PageStoreConfig::default();
        assert_eq!(paper.page_size, DEFAULT_PAGE_SIZE);
        assert_eq!(paper.page_size, 1024);
        assert_ne!(
            paper.page_size, generic.page_size,
            "paper_default must not silently alias Default"
        );
        // Both defer buffer sizing to the fraction convention.
        assert_eq!(paper.buffer_pages, 0);
        assert_eq!(paper.backend, StorageBackend::Heap);
    }

    #[test]
    #[should_panic(expected = "page frame overflow")]
    fn oversized_payload_is_rejected_at_allocate() {
        // A u32 needs 4 bytes; a 3-byte page cannot hold it.
        let mut s: PageStore<u32> = PageStore::new(PageStoreConfig::default().with_page_size(3));
        s.allocate(1);
    }

    #[test]
    fn heap_and_file_stores_behave_identically() {
        // One interleaved workload, both backends: every counter, the buffer
        // state and every payload must match — the parity guarantee at the
        // store level.
        let mut heap = store_on(3, StorageBackend::Heap);
        let mut file = store_on(3, StorageBackend::File);
        for s in [&mut heap, &mut file] {
            let ids: Vec<PageId> = (0..8u32).map(|i| s.allocate(i * 11)).collect();
            s.write(ids[2], 999);
            for &id in &[ids[0], ids[5], ids[2], ids[7], ids[0], ids[2]] {
                let _ = s.read(id);
            }
            s.free(ids[3]);
            s.set_buffer_pages(2);
            for &id in &[ids[6], ids[1], ids[6]] {
                let _ = s.read(id);
            }
            s.flush();
        }
        assert_eq!(heap.stats().snapshot(), file.stats().snapshot());
        assert_eq!(heap.buffer_keys_mru_to_lru(), file.buffer_keys_mru_to_lru());
        assert_eq!(heap.num_pages(), file.num_pages());
        assert_eq!(heap.backend_io(), file.backend_io());
        for i in 0..8u32 {
            if i == 3 {
                continue;
            }
            assert_eq!(heap.read(PageId(i)), file.read(PageId(i)), "page {i}");
        }
    }

    #[test]
    fn file_store_serves_data_from_disk_after_cold_restart_of_the_buffer() {
        let mut s = store_on(4, StorageBackend::File);
        let ids: Vec<PageId> = (0..20u32).map(|i| s.allocate(i * 7 + 1)).collect();
        s.flush();
        let io_flushed = s.backend_io();
        assert_eq!(io_flushed.bytes_written as usize, 20 * s.page_size());
        s.drop_buffer();
        s.stats().reset();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(s.read(id), i as u32 * 7 + 1);
        }
        let snap = s.stats().snapshot();
        let io = s.backend_io().since(&io_flushed);
        assert_eq!(
            io.bytes_read,
            snap.physical_reads * s.page_size() as u64,
            "bytes actually read must equal counted physical reads × page size"
        );
    }

    #[test]
    fn cloned_store_diverges_independently() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(2, backend);
            let a = s.allocate(5);
            s.flush();
            let mut copy = s.clone();
            copy.write(a, 6);
            copy.flush();
            s.drop_buffer();
            copy.drop_buffer();
            assert_eq!(s.read(a), 5, "{backend}: original saw the clone's write");
            assert_eq!(copy.read(a), 6, "{backend}: clone lost its write");
        }
    }
}
