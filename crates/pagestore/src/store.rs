//! The page store: a simulated disk that owns page payloads.

use crate::lru::{Admission, LruBuffer};
use crate::stats::IoStats;
use crate::{DEFAULT_BUFFER_FRACTION, DEFAULT_PAGE_SIZE};

/// Identifier of a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    fn as_key(self) -> u64 {
        u64::from(self.0)
    }
}

/// Configuration of a [`PageStore`].
#[derive(Debug, Clone, Copy)]
pub struct PageStoreConfig {
    /// Size of a disk page in bytes (used by clients to derive node fanout).
    pub page_size: usize,
    /// Number of pages the LRU buffer can hold.
    pub buffer_pages: usize,
}

impl Default for PageStoreConfig {
    fn default() -> Self {
        PageStoreConfig {
            page_size: DEFAULT_PAGE_SIZE,
            buffer_pages: 0,
        }
    }
}

impl PageStoreConfig {
    /// The paper's default: 1 KB pages, buffer sized later as a fraction of
    /// the data size via [`PageStore::set_buffer_fraction`].
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Sets the buffer capacity in pages.
    pub fn with_buffer_pages(mut self, pages: usize) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// Sets the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }
}

/// A simulated disk of fixed-size pages with an LRU buffer in front of it.
///
/// Payloads of type `T` (R-tree nodes, in practice) are owned by the store;
/// [`PageStore::read`] returns clones so that callers never hold borrows
/// across further store operations (which would be unsound for a real buffer
/// pool too — pages can be evicted under you).
///
/// Every logical read and write is routed through the buffer and recorded in
/// the shared [`IoStats`].
#[derive(Debug, Clone)]
pub struct PageStore<T: Clone> {
    pages: Vec<Option<T>>,
    buffer: LruBuffer,
    stats: IoStats,
    page_size: usize,
}

impl<T: Clone> PageStore<T> {
    /// Creates an empty store with the given configuration and fresh
    /// statistics counters.
    pub fn new(config: PageStoreConfig) -> Self {
        PageStore {
            pages: Vec::new(),
            buffer: LruBuffer::new(config.buffer_pages),
            stats: IoStats::new(),
            page_size: config.page_size,
        }
    }

    /// Creates a store that shares statistics counters with `stats`.
    ///
    /// The CIJ join algorithms operate on two (or more) trees at once but the
    /// paper reports a single page-access figure, so the trees' stores share
    /// one counter set.
    pub fn with_stats(config: PageStoreConfig, stats: IoStats) -> Self {
        PageStore {
            pages: Vec::new(),
            buffer: LruBuffer::new(config.buffer_pages),
            stats,
            page_size: config.page_size,
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages (the data size on disk, in pages).
    pub fn num_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// A handle to the shared statistics counters.
    pub fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    /// Allocates a new page containing `payload` and returns its id.
    ///
    /// Allocation counts as a logical write; the physical write happens when
    /// the page is evicted from the buffer (write-back) or on
    /// [`PageStore::flush`].
    pub fn allocate(&mut self, payload: T) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Some(payload));
        self.stats.record_logical_write();
        self.admit(id, true);
        id
    }

    /// Reads the payload of a page, going through the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist — that is a logic error in the
    /// caller (dangling `PageId`), not a runtime condition to handle.
    pub fn read(&mut self, id: PageId) -> T {
        match self.buffer.touch(id.as_key(), false) {
            Admission::Hit => self.stats.record_hit(),
            Admission::Miss { evicted } => {
                self.stats.record_miss();
                self.handle_eviction(evicted);
            }
        }
        self.pages
            .get(id.0 as usize)
            .and_then(|p| p.clone())
            .expect("read of unallocated page")
    }

    /// Overwrites the payload of an existing page, going through the buffer.
    pub fn write(&mut self, id: PageId, payload: T) {
        assert!(
            (id.0 as usize) < self.pages.len() && self.pages[id.0 as usize].is_some(),
            "write to unallocated page"
        );
        self.pages[id.0 as usize] = Some(payload);
        self.stats.record_logical_write();
        self.admit(id, true);
    }

    /// Accounts for a logical read of `id` **without** returning the
    /// payload: the buffer is touched (admitting the page and evicting the
    /// LRU victim exactly as [`PageStore::read`] would) and the hit or miss
    /// is recorded in the shared [`IoStats`].
    ///
    /// This is the replay hook of the parallel NM-CIJ execution path:
    /// workers read tree nodes from an immutable snapshot (via
    /// [`PageStore::peek`]) and record the page ids they touch; the
    /// coordinator then replays each leaf's trace through this method in
    /// the sequential (Hilbert) leaf order, so buffer state and every
    /// counter end up identical to a single-threaded run.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist, like [`PageStore::read`].
    pub fn note_read(&mut self, id: PageId) {
        assert!(
            (id.0 as usize) < self.pages.len() && self.pages[id.0 as usize].is_some(),
            "note_read of unallocated page"
        );
        match self.buffer.touch(id.as_key(), false) {
            Admission::Hit => self.stats.record_hit(),
            Admission::Miss { evicted } => {
                self.stats.record_miss();
                self.handle_eviction(evicted);
            }
        }
    }

    /// Reads a page **without** touching the buffer or the counters.
    ///
    /// Used only for assertions and for in-memory oracles; never by the
    /// algorithms being measured.
    pub fn peek(&self, id: PageId) -> &T {
        self.pages[id.0 as usize]
            .as_ref()
            .expect("peek of unallocated page")
    }

    /// Frees a page: it no longer counts towards [`PageStore::num_pages`] and
    /// is dropped from the buffer without write-back accounting.
    ///
    /// Used by the R-tree bulk loader to discard the placeholder root of an
    /// initially-empty tree once the packed root replaces it. Freed page ids
    /// are not recycled.
    pub fn free(&mut self, id: PageId) {
        if let Some(slot) = self.pages.get_mut(id.0 as usize) {
            *slot = None;
            self.buffer.remove(id.as_key());
        }
    }

    /// Writes back every dirty buffered page and empties the buffer.
    pub fn flush(&mut self) {
        for _ in self.buffer.clear() {
            self.stats.record_physical_write();
        }
    }

    /// Empties the buffer *without* counting write-backs. Useful to make
    /// separate measurements start cold without attributing the previous
    /// phase's dirty pages to the next one.
    pub fn drop_buffer(&mut self) {
        self.buffer.clear();
    }

    /// Resizes the buffer to `pages` pages, accounting for the write-back of
    /// any dirty pages that get evicted by the shrink.
    pub fn set_buffer_pages(&mut self, pages: usize) {
        for _ in self.buffer.resize(pages) {
            self.stats.record_physical_write();
        }
        if self.buffer.capacity() != pages {
            // resize only evicts; growing is handled by replacing the buffer.
            let mut fresh = LruBuffer::new(pages);
            for key in self.buffer.keys_mru_to_lru().into_iter().rev() {
                fresh.touch(key, false);
            }
            self.buffer = fresh;
        }
    }

    /// Sets the buffer capacity to `fraction` of the current data size on
    /// disk (in pages), the way the paper expresses buffer sizes ("2 % of the
    /// data size"). At least one page is kept whenever `fraction > 0`.
    pub fn set_buffer_fraction(&mut self, fraction: f64) {
        let pages = if fraction <= 0.0 {
            0
        } else {
            ((self.num_pages() as f64 * fraction).ceil() as usize).max(1)
        };
        self.set_buffer_pages(pages);
    }

    /// The paper's default buffer: 2 % of the data size.
    pub fn set_default_buffer(&mut self) {
        self.set_buffer_fraction(DEFAULT_BUFFER_FRACTION);
    }

    /// Current buffer capacity in pages.
    pub fn buffer_pages(&self) -> usize {
        self.buffer.capacity()
    }

    fn admit(&mut self, id: PageId, dirty: bool) {
        match self.buffer.touch(id.as_key(), dirty) {
            Admission::Hit => {}
            Admission::Miss { evicted } => {
                self.handle_eviction(evicted);
            }
        }
    }

    fn handle_eviction(&mut self, evicted: Option<(u64, bool)>) {
        if let Some((_, dirty)) = evicted {
            if dirty {
                self.stats.record_physical_write();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(buffer_pages: usize) -> PageStore<u32> {
        PageStore::new(PageStoreConfig::default().with_buffer_pages(buffer_pages))
    }

    #[test]
    fn allocate_and_read_roundtrip() {
        let mut s = store(4);
        let a = s.allocate(10);
        let b = s.allocate(20);
        assert_eq!(s.read(a), 10);
        assert_eq!(s.read(b), 20);
        assert_eq!(s.num_pages(), 2);
    }

    #[test]
    fn buffered_reads_hit_after_first_access() {
        let mut s = store(4);
        let a = s.allocate(1);
        s.drop_buffer();
        s.stats().reset();
        s.read(a);
        s.read(a);
        s.read(a);
        let snap = s.stats().snapshot();
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.buffer_hits, 2);
    }

    #[test]
    fn unbuffered_store_counts_every_read() {
        let mut s = store(0);
        let a = s.allocate(1);
        s.stats().reset();
        for _ in 0..5 {
            s.read(a);
        }
        assert_eq!(s.stats().snapshot().physical_reads, 5);
    }

    #[test]
    fn write_back_counts_on_eviction() {
        let mut s = store(1);
        let a = s.allocate(1); // dirty in buffer
        let _b = s.allocate(2); // evicts a (dirty) -> physical write
        let snap = s.stats().snapshot();
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.logical_writes, 2);
        // Reading a again is a miss.
        s.stats().reset();
        s.read(a);
        assert_eq!(s.stats().snapshot().physical_reads, 1);
    }

    #[test]
    fn flush_writes_dirty_pages_once() {
        let mut s = store(10);
        for i in 0..5 {
            s.allocate(i);
        }
        s.flush();
        let snap = s.stats().snapshot();
        assert_eq!(snap.physical_writes, 5);
        // A second flush has nothing left to write.
        s.flush();
        assert_eq!(s.stats().snapshot().physical_writes, 5);
    }

    #[test]
    fn write_updates_payload() {
        let mut s = store(2);
        let a = s.allocate(1);
        s.write(a, 42);
        assert_eq!(s.read(a), 42);
        assert_eq!(*s.peek(a), 42);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let mut s = store(2);
        let a = s.allocate(1);
        let _ = s.read(PageId(a.0 + 7));
    }

    #[test]
    fn note_read_replays_exactly_like_read() {
        // Two stores with identical contents: replaying a page-id trace via
        // note_read must leave counters and buffer state identical to
        // performing the reads directly.
        let mut live = store(2);
        let mut replay = store(2);
        let ids: Vec<PageId> = (0..4).map(|i| live.allocate(i)).collect();
        for i in 0..4 {
            replay.allocate(i);
        }
        live.stats().reset();
        replay.stats().reset();
        let trace = [ids[0], ids[1], ids[0], ids[2], ids[3], ids[1], ids[0]];
        for &id in &trace {
            let _ = live.read(id);
        }
        for &id in &trace {
            replay.note_read(id);
        }
        assert_eq!(live.stats().snapshot(), replay.stats().snapshot());
        assert_eq!(
            live.buffer.keys_mru_to_lru(),
            replay.buffer.keys_mru_to_lru()
        );
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn note_read_of_unallocated_page_panics() {
        let mut s = store(2);
        let a = s.allocate(1);
        s.note_read(PageId(a.0 + 9));
    }

    #[test]
    fn free_removes_page_from_count_and_buffer() {
        let mut s = store(4);
        let a = s.allocate(1);
        let b = s.allocate(2);
        assert_eq!(s.num_pages(), 2);
        s.free(a);
        assert_eq!(s.num_pages(), 1);
        // The freed (dirty) page is not written back on flush.
        s.flush();
        assert_eq!(s.stats().snapshot().physical_writes, 1);
        assert_eq!(s.read(b), 2);
    }

    #[test]
    fn buffer_fraction_sizing() {
        let mut s = store(0);
        for i in 0..100 {
            s.allocate(i);
        }
        s.set_buffer_fraction(0.02);
        assert_eq!(s.buffer_pages(), 2);
        s.set_buffer_fraction(0.005);
        assert_eq!(s.buffer_pages(), 1);
        s.set_buffer_fraction(0.0);
        assert_eq!(s.buffer_pages(), 0);
    }

    #[test]
    fn shared_stats_between_stores() {
        let stats = IoStats::new();
        let mut p: PageStore<u32> =
            PageStore::with_stats(PageStoreConfig::default(), stats.clone());
        let mut q: PageStore<u32> =
            PageStore::with_stats(PageStoreConfig::default(), stats.clone());
        let a = p.allocate(1);
        let b = q.allocate(2);
        p.read(a);
        q.read(b);
        assert_eq!(stats.snapshot().physical_reads, 2);
    }

    #[test]
    fn grow_buffer_preserves_cached_pages() {
        let mut s = store(2);
        let a = s.allocate(1);
        let b = s.allocate(2);
        s.set_buffer_pages(8);
        s.stats().reset();
        s.read(a);
        s.read(b);
        // Both pages were resident before the grow and must still hit.
        assert_eq!(s.stats().snapshot().buffer_hits, 2);
    }
}
