//! The page store: fixed-size page frames behind an LRU buffer, over a
//! pluggable [`PageBackend`] — with **no decoded mirror**.
//!
//! # Residency and the pin/unpin contract
//!
//! Historically the store kept a decoded in-memory image of *every* page,
//! which made "cold" reads never actually cold and bounded datasets by RAM.
//! That mirror is gone. Decoded payloads now live in a **resident map**
//! that holds exactly two kinds of pages:
//!
//! * **buffer members** — pages currently admitted to the [`LruBuffer`];
//!   their decoded payload is the in-memory image a buffer hit serves, and
//!   it is dropped when the page is evicted (after a write-back if dirty);
//! * **pinned pages** — pages with outstanding [`PageRef`] guards from
//!   [`PageStore::peek`]. A peek pins the page (refcounted on the
//!   [`LruBuffer`], which exempts it from eviction) **without touching
//!   recency, membership or any counter**, so snapshot reads leave the
//!   measured buffer state byte-identical. A peek of a non-resident page
//!   decodes it through the backend as an [`IoClass::Unmetered`] transfer
//!   and holds it in the resident map — *not* admitted to the buffer —
//!   until the last guard drops.
//!
//! Everything else decodes on miss through the backend and is dropped on
//! eviction, so peak decoded residency is bounded by `buffer capacity +
//! pinned pages` (tracked by [`PageStore::peak_resident_pages`] /
//! [`PageStore::peak_pinned_pages`] and asserted by the `out_of_core` bench
//! experiment) instead of by the dataset size.
//!
//! A [`PageRef`] holds its payload through an `Arc`, so a guard stays valid
//! even if the page is concurrently overwritten (writes *replace* the
//! resident payload — a guard taken before the write keeps observing the
//! snapshot it pinned; trees are read-only during joins, so this only
//! matters for exotic interleavings) or freed.
//!
//! # Read/write path and the backend parity guarantee
//!
//! * Logical reads go through the LRU buffer: a **hit** is served from the
//!   resident payload, a **miss** transfers the frame from the backend
//!   ([`IoClass::Metered`]) and decodes it.
//! * Writes are **write-back**: allocate/write dirty the buffered page; the
//!   frame is encoded and written to the backend when the page is evicted
//!   or on [`PageStore::flush`] (both metered); [`PageStore::drop_buffer`]
//!   writes dirty frames back as [`IoClass::Unmetered`] traffic — see the
//!   counting contract in the [backend module docs](crate::backend).
//!
//! All accounting ([`IoStats`], buffer state, eviction decisions) happens
//! *above* the backend, so swapping [`StorageBackend::Heap`] for
//! [`StorageBackend::File`] or [`StorageBackend::Mmap`] changes no counter
//! and no result — only whether the frames actually hit storage, measured
//! by [`PageStore::backend_io`].
//!
//! The store is internally synchronized (a mutex around the residency
//! state), which is what lets `&self` peeks pin pages while `&mut self`
//! metered operations stay exclusive. Guards never hold the lock; they
//! re-acquire it briefly on drop to unpin.

use std::collections::{BTreeSet, HashMap};
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::backend::{BackendIo, IoClass, PageBackend, StorageBackend};
use crate::error::{IoOp, PageIoError};
use crate::fault::{FaultBackend, FaultSpec, FaultStats};
use crate::frame::{seal_frame, verify_frame, PagePayload, FRAME_TRAILER_BYTES};
use crate::lru::{Admission, LruBuffer};
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

/// Virtual time source the store's retry backoff "sleeps" against.
///
/// The backoff never blocks a thread or consults a wall clock — it *records*
/// ticks on this trait, keeping retry behavior fully deterministic (and the
/// workspace `CIJ-D101` clock lint clean). The default [`VirtualClock`]
/// simply accumulates; a test clock can observe the exact backoff schedule.
pub trait RetryClock: std::fmt::Debug + Send {
    /// Charges `ticks` of backoff delay.
    fn advance(&mut self, ticks: u64);
    /// Total ticks charged so far.
    fn ticks(&self) -> u64;
}

/// The default [`RetryClock`]: a plain accumulator of virtual ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    ticks: u64,
}

impl RetryClock for VirtualClock {
    fn advance(&mut self, ticks: u64) {
        self.ticks += ticks;
    }

    fn ticks(&self) -> u64 {
        self.ticks
    }
}

/// Bounded retry-with-backoff policy for transient backend faults.
///
/// Attempt `k` (1-based) that fails with a transient error charges
/// `backoff_base_ticks << (k - 1)` virtual ticks and retries, up to
/// `max_attempts` total attempts; persistent and corrupt errors are never
/// retried. The default budget of 4 attempts is generous: the injected
/// fault schedule never fires twice in a row, and real `EINTR`-class
/// transients are already absorbed inside `FileBackend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Virtual ticks charged by the first backoff; doubles per retry.
    pub backoff_base_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_ticks: 1,
        }
    }
}

/// Identifier of a page on the (simulated or real) disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    fn as_key(self) -> u64 {
        u64::from(self.0)
    }
}

/// Configuration of a [`PageStore`].
#[derive(Debug, Clone, Copy)]
pub struct PageStoreConfig {
    /// Size of a disk page in bytes. Doubles as the frame size of the
    /// backend and as the byte budget clients use to derive node fanout.
    pub page_size: usize,
    /// Number of pages the LRU buffer can hold.
    pub buffer_pages: usize,
    /// Which storage backend holds the page frames.
    pub backend: StorageBackend,
    /// Optional fault-injection schedule: when set, the created backend is
    /// wrapped in a [`FaultBackend`](crate::FaultBackend). Both default
    /// constructors consult [`FaultSpec::from_env`], so
    /// `CIJ_FAULT_PROFILE=transient` puts every store in the process under
    /// injected faults (the CI robustness pass).
    pub fault: Option<FaultSpec>,
}

impl Default for PageStoreConfig {
    /// A generic default: 4 KB pages (a typical OS page size), no buffer,
    /// heap frames. The paper's experimental setting is deliberately *not*
    /// the default — use [`PageStoreConfig::paper_default`] for that.
    fn default() -> Self {
        PageStoreConfig {
            page_size: 4096,
            buffer_pages: 0,
            backend: StorageBackend::Heap,
            fault: FaultSpec::from_env(),
        }
    }
}

impl PageStoreConfig {
    /// The paper's experimental setting: **1 KB pages**
    /// ([`DEFAULT_PAGE_SIZE`]), explicitly distinct from the generic
    /// [`Default`] (4 KB).
    ///
    /// The paper sizes the LRU buffer *relative to the data*: "2 % of the
    /// data size" ([`crate::DEFAULT_BUFFER_FRACTION`]). Since the data size
    /// is unknown until pages are allocated, `buffer_pages` starts at 0 here
    /// and the buffer is sized after loading via
    /// [`PageStore::set_buffer_fraction`] (or
    /// [`PageStore::set_default_buffer`]) — that call is part of the
    /// convention, not optional.
    pub fn paper_default() -> Self {
        PageStoreConfig {
            page_size: DEFAULT_PAGE_SIZE,
            buffer_pages: 0,
            backend: StorageBackend::Heap,
            fault: FaultSpec::from_env(),
        }
    }

    /// Sets the buffer capacity in pages.
    pub fn with_buffer_pages(mut self, pages: usize) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// Sets the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Sets the storage backend.
    pub fn with_backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets an explicit fault-injection schedule (overriding whatever the
    /// environment requested).
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.fault = Some(spec);
        self
    }

    /// Disables fault injection even when the environment requests it —
    /// for oracles and parity baselines that must run clean.
    pub fn without_faults(mut self) -> Self {
        self.fault = None;
        self
    }
}

/// The mutex-guarded residency state of a [`PageStore`].
#[derive(Debug)]
struct StoreInner<T: PagePayload> {
    /// Decoded payloads of exactly the buffer members and the pinned pages
    /// — the replacement for the historical full mirror.
    resident: HashMap<u64, Arc<T>>,
    /// Which page ids are currently allocated (index = page id).
    allocated: Vec<bool>,
    backend: Box<dyn PageBackend>,
    buffer: LruBuffer,
    stats: IoStats,
    /// Scratch frame (always `page_size` bytes) for encode/decode transfers.
    frame: Vec<u8>,
    /// High-water mark of `resident.len()`, sampled at operation
    /// boundaries (steady states, not mid-operation transients).
    peak_resident: usize,
    /// Bounded retry-with-backoff policy for transient backend faults.
    retry: RetryPolicy,
    /// Virtual time the backoff charges its delays against.
    clock: Box<dyn RetryClock>,
    /// Frames that failed checksum verification: reads of these fail fast
    /// with a `Corrupt` error instead of re-transferring known-bad bytes.
    /// Ordered set so diagnostics enumerate deterministically.
    quarantined: BTreeSet<u32>,
    /// Read attempts repeated after a transient error.
    fault_retries: u64,
    /// Reads that succeeded after at least one retry.
    fault_recoveries: u64,
    /// Write attempts repeated after a transient error.
    fault_write_retries: u64,
}

/// A disk of fixed-size pages with an LRU buffer in front of it.
///
/// Payloads of type `T` (R-tree nodes, in practice) are serialized through
/// the [`PagePayload`] codec into `page_size`-byte frames held by the
/// configured [`PageBackend`]; a payload whose encoding exceeds the page
/// size is rejected at allocate/write time, so fanout budgets cannot be
/// silently violated. [`PageStore::read`] returns owned payloads so that
/// callers never hold borrows across further store operations (pages can be
/// evicted under you, exactly like a real buffer pool); [`PageStore::peek`]
/// returns a pinned [`PageRef`] guard instead. See the [module docs](self)
/// for the residency and pin/unpin contract.
#[derive(Debug)]
pub struct PageStore<T: PagePayload> {
    inner: Arc<Mutex<StoreInner<T>>>,
    /// Shared counter handle, cached outside the lock.
    stats: IoStats,
    kind: StorageBackend,
    page_size: usize,
}

impl<T: PagePayload> Clone for PageStore<T> {
    /// A deep, independent copy: fresh backend with identical frames, the
    /// same buffer membership/recency, shared [`IoStats`] counters (like
    /// every other handle copy) — and **no pins**: the clone has no
    /// outstanding [`PageRef`] guards, so only buffer members carry over
    /// into its resident map.
    fn clone(&self) -> Self {
        let inner = self.lock();
        let mut buffer = inner.buffer.clone();
        buffer.reset_pins();
        let resident: HashMap<u64, Arc<T>> = inner
            .resident
            .iter()
            .filter(|(k, _)| buffer.contains(**k))
            .map(|(k, v)| (*k, Arc::clone(v)))
            .collect();
        let peak_resident = resident.len();
        PageStore {
            inner: Arc::new(Mutex::new(StoreInner {
                resident,
                allocated: inner.allocated.clone(),
                backend: inner.backend.clone_backend(),
                buffer,
                stats: inner.stats.clone(),
                frame: vec![0u8; inner.frame.len()],
                peak_resident,
                retry: inner.retry,
                // The clone starts its own virtual timeline (clock state is
                // diagnostic, not part of the data).
                clock: Box::new(VirtualClock::default()),
                quarantined: inner.quarantined.clone(),
                fault_retries: inner.fault_retries,
                fault_recoveries: inner.fault_recoveries,
                fault_write_retries: inner.fault_write_retries,
            })),
            stats: self.stats.clone(),
            kind: self.kind,
            page_size: self.page_size,
        }
    }
}

impl<T: PagePayload> PageStore<T> {
    /// Creates an empty store with the given configuration and fresh
    /// statistics counters.
    pub fn new(config: PageStoreConfig) -> Self {
        Self::with_stats(config, IoStats::new())
    }

    /// Creates a store that shares statistics counters with `stats`.
    ///
    /// The CIJ join algorithms operate on two (or more) trees at once but the
    /// paper reports a single page-access figure, so the trees' stores share
    /// one counter set.
    pub fn with_stats(config: PageStoreConfig, stats: IoStats) -> Self {
        assert!(config.page_size > 0, "page size must be positive");
        let mut backend = config.backend.create(config.page_size);
        if let Some(spec) = config.fault {
            backend = Box::new(FaultBackend::new(backend, spec));
        }
        PageStore {
            inner: Arc::new(Mutex::new(StoreInner {
                resident: HashMap::new(),
                allocated: Vec::new(),
                backend,
                buffer: LruBuffer::new(config.buffer_pages),
                stats: stats.clone(),
                frame: vec![0u8; config.page_size],
                peak_resident: 0,
                retry: RetryPolicy::default(),
                clock: Box::new(VirtualClock::default()),
                quarantined: BTreeSet::new(),
                fault_retries: 0,
                fault_recoveries: 0,
                fault_write_retries: 0,
            })),
            stats,
            kind: config.backend,
            page_size: config.page_size,
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner<T>> {
        // Poisoning is ignored deliberately: a panic mid-operation in some
        // other thread must not cascade into every guard drop.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Which storage backend holds this store's frames.
    pub fn backend_kind(&self) -> StorageBackend {
        self.kind
    }

    /// Bytes actually transferred to/from the backend so far — the physical
    /// counterpart of the [`IoStats`] page-access counts (metered and
    /// unmetered buckets, see [`BackendIo`]).
    pub fn backend_io(&self) -> BackendIo {
        self.lock().backend.io()
    }

    /// Number of allocated pages (the data size on disk, in pages).
    pub fn num_pages(&self) -> usize {
        self.lock().allocated.iter().filter(|&&a| a).count()
    }

    /// A handle to the shared statistics counters.
    pub fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    /// Number of pages currently holding a decoded payload (buffer members
    /// plus pinned pages).
    pub fn resident_pages(&self) -> usize {
        self.lock().resident.len()
    }

    /// High-water mark of [`PageStore::resident_pages`] — with the mirror
    /// gone this is bounded by `buffer capacity + peak pinned`, not by the
    /// dataset.
    pub fn peak_resident_pages(&self) -> usize {
        self.lock().peak_resident
    }

    /// Number of distinct pages currently pinned by [`PageRef`] guards.
    pub fn pinned_pages(&self) -> usize {
        self.lock().buffer.pinned_pages()
    }

    /// High-water mark of [`PageStore::pinned_pages`].
    pub fn peak_pinned_pages(&self) -> usize {
        self.lock().buffer.peak_pinned()
    }

    /// Restarts the residency high-water marks from the current state, so a
    /// measurement phase tracks its own peaks rather than construction's.
    pub fn reset_residency_peaks(&mut self) {
        let mut inner = self.lock();
        inner.peak_resident = inner.resident.len();
        inner.buffer.reset_peak_pinned();
    }

    /// Allocates a new page containing `payload` and returns its id.
    ///
    /// Allocation counts as a logical write; the physical write happens when
    /// the page is evicted from the buffer (write-back) or on
    /// [`PageStore::flush`].
    ///
    /// # Panics
    ///
    /// Panics with a [`FrameOverflow`](crate::FrameOverflow) message if the
    /// payload's encoding does not fit one page.
    pub fn allocate(&mut self, payload: T) -> PageId {
        let inner = &mut *self.lock();
        inner.check_fits(&payload);
        let index = inner.backend.allocate();
        debug_assert_eq!(
            index as usize,
            inner.allocated.len(),
            "backend frame index drifted from the page table"
        );
        inner.allocated.push(true);
        let id = PageId(index);
        inner.stats.record_logical_write();
        let key = id.as_key();
        inner.resident.insert(key, Arc::new(payload));
        inner.admit_dirty(key);
        inner.release_if_unreferenced(key);
        inner.note_peak();
        id
    }

    /// Reads the payload of a page, going through the buffer. A miss
    /// transfers the frame from the backend ([`IoClass::Metered`]) and
    /// decodes it; a hit is served from the resident payload.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist — that is a logic error in the
    /// caller (dangling `PageId`), not a runtime condition to handle — and
    /// on storage failure (see [`PageStore::try_read`] for the fallible
    /// variant; this infallible wrapper serves build/oracle paths where a
    /// storage error is service-fatal by the crate's failure model).
    pub fn read(&mut self, id: PageId) -> T {
        self.try_read(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`PageStore::read`]: transient backend faults
    /// are retried under the store's [`RetryPolicy`]; exhausted transients,
    /// persistent failures and checksum mismatches come back as a
    /// structured [`PageIoError`]. Corrupt frames are quarantined — later
    /// reads fail fast without re-transferring known-bad bytes.
    pub fn try_read(&mut self, id: PageId) -> Result<T, PageIoError> {
        let arc = self.lock().try_read_arc(id)?;
        Ok(Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()))
    }

    /// Reads a page by reference, going through the buffer with accounting
    /// identical to [`PageStore::read`] — but serving the visitor without
    /// cloning the payload.
    ///
    /// On a miss the frame is physically transferred from the backend and
    /// decoded (so [`PageStore::backend_io`] byte counters match `read`
    /// exactly). This is the zero-copy decode path behind arena-based node
    /// visits in `cij-rtree`: pages land straight in the caller's flat
    /// buffers with no intermediate payload allocation. The callback runs
    /// *outside* the store's internal lock (the payload is kept alive by an
    /// `Arc`), so it may call back into this or any other store.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist, like [`PageStore::read`].
    pub fn read_with<R>(&mut self, id: PageId, f: impl FnOnce(&T) -> R) -> R {
        self.try_read_with(id, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`PageStore::read_with`] — error contract of
    /// [`PageStore::try_read`].
    pub fn try_read_with<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, PageIoError> {
        let arc = self.lock().try_read_arc(id)?;
        Ok(f(&arc))
    }

    /// Overwrites the payload of an existing page, going through the buffer.
    ///
    /// The resident payload is **replaced**, not mutated: outstanding
    /// [`PageRef`] guards keep observing the payload they pinned.
    ///
    /// # Panics
    ///
    /// Panics on unallocated pages and on payloads that exceed the page size
    /// (see [`PageStore::allocate`]).
    pub fn write(&mut self, id: PageId, payload: T) {
        let inner = &mut *self.lock();
        assert!(inner.is_allocated(id), "write to unallocated page");
        inner.check_fits(&payload);
        inner.stats.record_logical_write();
        let key = id.as_key();
        inner.resident.insert(key, Arc::new(payload));
        inner.admit_dirty(key);
        inner.release_if_unreferenced(key);
        inner.note_peak();
    }

    /// Accounts for a logical read of `id` **without** returning the
    /// payload: the buffer is touched and the hit or miss recorded exactly
    /// as [`PageStore::read`] would — including the physical frame transfer
    /// on a miss, so backend byte counters replay identically too.
    ///
    /// This is the deferred-accounting hook of the parallel NM-CIJ path:
    /// workers read from pinned snapshots ([`PageStore::peek`]) and record
    /// page ids; the coordinator replays each trace here in sequential leaf
    /// order (through `RTree::replay_read` in `cij-rtree`, a thin wrapper
    /// over this method — this doc is the authoritative one).
    ///
    /// In debug builds, when the replayed page still holds a pinned resident
    /// payload, the transferred frame is compared against its re-encoding —
    /// catching trace/snapshot drift at the first diverging page.
    ///
    /// # Panics
    ///
    /// Panics if the replayed page id does not exist (trace drift), like
    /// [`PageStore::read`].
    pub fn note_read(&mut self, id: PageId) {
        self.try_note_read(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`PageStore::note_read`] — error contract of
    /// [`PageStore::try_read`].
    pub fn try_note_read(&mut self, id: PageId) -> Result<(), PageIoError> {
        let _ = self.lock().try_read_arc(id)?;
        Ok(())
    }

    /// Reads a page **without** touching the buffer recency, the metered
    /// counters or the [`IoStats`] — returning a [`PageRef`] guard that
    /// pins the page for its lifetime.
    ///
    /// A resident page (buffer member or already pinned) is served from its
    /// decoded payload with zero I/O. A cold page is decoded through the
    /// backend as an [`IoClass::Unmetered`] transfer and held in the
    /// resident map — not admitted to the buffer — until the last guard
    /// drops. Either way the measured buffer state is left byte-identical,
    /// which is what the snapshot readers of the parallel and fast
    /// execution paths rely on.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist, and on storage failure (see
    /// [`PageStore::try_peek`]).
    pub fn peek(&self, id: PageId) -> PageRef<T> {
        self.try_peek(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`PageStore::peek`] — error contract of
    /// [`PageStore::try_read`], with the transfer accounted as
    /// [`IoClass::Unmetered`] like every peek.
    pub fn try_peek(&self, id: PageId) -> Result<PageRef<T>, PageIoError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        assert!(inner.is_allocated(id), "peek of unallocated page");
        let key = id.as_key();
        let payload = match inner.resident.get(&key) {
            Some(arc) => Arc::clone(arc),
            None => {
                inner.read_frame_retrying(id.0, IoClass::Unmetered)?;
                inner.verify_or_quarantine(id.0)?;
                let arc = Arc::new(T::decode(&inner.frame));
                inner.resident.insert(key, Arc::clone(&arc));
                arc
            }
        };
        inner.buffer.pin(key);
        inner.note_peak();
        drop(guard);
        Ok(PageRef {
            store: Arc::clone(&self.inner),
            key,
            payload,
        })
    }

    /// Frees a page: it no longer counts towards [`PageStore::num_pages`],
    /// is dropped from the buffer without write-back accounting, and its
    /// backend frame is released.
    ///
    /// Used by the R-tree bulk loader to discard the placeholder root of an
    /// initially-empty tree once the packed root replaces it. Freed page ids
    /// are not recycled. Outstanding [`PageRef`] guards stay valid (they
    /// own their payload).
    pub fn free(&mut self, id: PageId) {
        let inner = &mut *self.lock();
        if inner.is_allocated(id) {
            inner.allocated[id.0 as usize] = false;
            inner.buffer.remove(id.as_key());
            inner.resident.remove(&id.as_key());
            inner.backend.free(id.0);
        }
    }

    /// Writes back every dirty buffered page (metered, like eviction
    /// write-backs — the counting contract in the
    /// [backend docs](crate::backend)), empties the buffer and flushes the
    /// backend.
    pub fn flush(&mut self) {
        let inner = &mut *self.lock();
        for (key, dirty) in inner.buffer.clear() {
            if dirty {
                inner.write_back(key, IoClass::Metered);
                inner.stats.record_physical_write();
            }
            inner.release_if_unreferenced(key);
        }
        // A failed durability flush is service-fatal by the failure model:
        // nothing above the store can make the medium sync.
        if let Err(e) = inner.backend.flush() {
            panic!("{e}");
        }
    }

    /// Empties the buffer *without* metering write-backs. Useful to make
    /// separate measurements start cold without attributing the previous
    /// phase's dirty pages to the next one.
    ///
    /// The dirty frames are still physically written (data must survive on a
    /// real backend — a later cold read serves them from storage), but as
    /// [`IoClass::Unmetered`] traffic: the [`IoStats`] and the metered byte
    /// counters stay put, by design of the measurement convention.
    pub fn drop_buffer(&mut self) {
        let inner = &mut *self.lock();
        for (key, dirty) in inner.buffer.clear() {
            if dirty {
                inner.write_back(key, IoClass::Unmetered);
            }
            inner.release_if_unreferenced(key);
        }
    }

    /// Resizes the buffer to `pages` pages, accounting for the write-back of
    /// any dirty pages that get evicted by a shrink. (Growing keeps all
    /// resident pages; [`LruBuffer::resize`] handles both directions.)
    pub fn set_buffer_pages(&mut self, pages: usize) {
        let inner = &mut *self.lock();
        for (key, dirty) in inner.buffer.resize(pages) {
            if dirty {
                inner.write_back(key, IoClass::Metered);
                inner.stats.record_physical_write();
            }
            inner.release_if_unreferenced(key);
        }
    }

    /// Sets the buffer capacity to `fraction` of the current data size on
    /// disk (in pages), the way the paper expresses buffer sizes ("2 % of the
    /// data size"). At least one page is kept whenever `fraction > 0` — even
    /// when the store is so small that the fraction rounds to zero pages.
    pub fn set_buffer_fraction(&mut self, fraction: f64) {
        let pages = if fraction <= 0.0 {
            0
        } else {
            ((self.num_pages() as f64 * fraction).ceil() as usize).max(1)
        };
        self.set_buffer_pages(pages);
    }

    /// The paper's default buffer: 2 % of the data size.
    pub fn set_default_buffer(&mut self) {
        self.set_buffer_fraction(crate::DEFAULT_BUFFER_FRACTION);
    }

    /// Current buffer capacity in pages.
    pub fn buffer_pages(&self) -> usize {
        self.lock().buffer.capacity()
    }

    /// Fault and recovery counters: the backend's injection tallies (zero
    /// for real backends) combined with the store's retry, recovery and
    /// quarantine counts.
    pub fn fault_stats(&self) -> FaultStats {
        let inner = self.lock();
        let mut stats = inner.backend.fault_stats();
        stats.retries = inner.fault_retries;
        stats.recoveries = inner.fault_recoveries;
        stats.write_retries = inner.fault_write_retries;
        stats.quarantined_frames = inner.quarantined.len() as u64;
        stats
    }

    /// Wraps the current backend in a [`FaultBackend`] running `spec` —
    /// the hook the `fault_storm` experiment uses to corrupt frames of an
    /// already-built tree. Existing frames and byte counters carry over.
    pub fn inject_fault(&mut self, spec: FaultSpec) {
        let inner = &mut *self.lock();
        let placeholder: Box<dyn PageBackend> = Box::new(crate::HeapBackend::new(1));
        let current = std::mem::replace(&mut inner.backend, placeholder);
        inner.backend = Box::new(FaultBackend::new(current, spec));
    }

    /// Replaces the retry policy (default: 4 attempts, exponential backoff
    /// from 1 virtual tick).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.lock().retry = RetryPolicy {
            max_attempts: policy.max_attempts.max(1),
            ..policy
        };
    }

    /// Replaces the virtual clock the retry backoff charges against.
    pub fn set_retry_clock(&mut self, clock: Box<dyn RetryClock>) {
        self.lock().clock = clock;
    }

    /// Total virtual backoff ticks charged so far.
    pub fn retry_clock_ticks(&self) -> u64 {
        self.lock().clock.ticks()
    }

    /// Frame indices currently quarantined after checksum failures, in
    /// ascending order.
    pub fn quarantined_frames(&self) -> Vec<u32> {
        self.lock().quarantined.iter().copied().collect()
    }

    #[cfg(test)]
    pub(crate) fn buffer_keys_mru_to_lru(&self) -> Vec<u64> {
        self.lock().buffer.keys_mru_to_lru()
    }
}

impl<T: PagePayload> StoreInner<T> {
    fn is_allocated(&self, id: PageId) -> bool {
        self.allocated.get(id.0 as usize).copied().unwrap_or(false)
    }

    fn check_fits(&self, payload: &T) {
        // The payload budget excludes the integrity trailer sealed into the
        // tail of every frame.
        let budget = self.frame.len().saturating_sub(FRAME_TRAILER_BYTES);
        if let Err(overflow) = payload.check_frame(budget) {
            panic!("{overflow}");
        }
    }

    fn note_peak(&mut self) {
        self.peak_resident = self.peak_resident.max(self.resident.len());
    }

    /// Transfers frame `index` into the scratch buffer, retrying transient
    /// faults under the bounded [`RetryPolicy`] with exponential backoff on
    /// the virtual clock. Quarantined frames fail fast with a `Corrupt`
    /// error before touching the backend.
    ///
    /// This is the one sanctioned read-side `IoClass` funnel (allowlisted
    /// `CIJ-I301` in `lint.toml`, like `write_back` on the write side).
    fn read_frame_retrying(&mut self, index: u32, class: IoClass) -> Result<(), PageIoError> {
        if self.quarantined.contains(&index) {
            return Err(PageIoError::corrupt(
                IoOp::Read,
                Some(index),
                "frame quarantined after an earlier checksum failure",
            ));
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.backend.read(index, &mut self.frame, class) {
                Ok(()) => {
                    if attempt > 1 {
                        self.fault_recoveries += 1;
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.retry.max_attempts => {
                    self.fault_retries += 1;
                    self.clock
                        .advance(self.retry.backoff_base_ticks << (attempt - 1).min(16));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Checks the integrity trailer of the scratch frame just transferred
    /// for `index`; on mismatch the frame is quarantined and a `Corrupt`
    /// error returned.
    fn verify_or_quarantine(&mut self, index: u32) -> Result<(), PageIoError> {
        match verify_frame(&self.frame) {
            Ok(_payload_len) => Ok(()),
            Err(detail) => {
                self.quarantined.insert(index);
                Err(PageIoError::corrupt(IoOp::Read, Some(index), detail))
            }
        }
    }

    /// The shared counted-read path of `read`, `read_with` and `note_read`:
    /// touch the buffer, record hit/miss, transfer + verify + decode on
    /// miss, keep the residency invariant (resident = members ∪ pinned).
    ///
    /// A failed transfer still counts its miss (the attempt is real I/O
    /// pressure), but the page is backed out of the buffer so a later retry
    /// starts from a consistent state.
    fn try_read_arc(&mut self, id: PageId) -> Result<Arc<T>, PageIoError> {
        assert!(self.is_allocated(id), "read of unallocated page");
        let key = id.as_key();
        match self.buffer.touch(key, false) {
            Admission::Hit => {
                self.stats.record_hit();
                Ok(Arc::clone(
                    self.resident
                        .get(&key)
                        .expect("buffer member without a decoded payload"),
                ))
            }
            Admission::Miss { evicted } => {
                self.stats.record_miss();
                self.handle_eviction(evicted);
                let outcome = match self.read_frame_retrying(id.0, IoClass::Metered) {
                    Ok(()) => self.verify_or_quarantine(id.0),
                    Err(e) => Err(e),
                };
                if let Err(e) = outcome {
                    // Back the admission out: a buffer member must always
                    // carry a decoded payload.
                    self.buffer.remove(key);
                    self.release_if_unreferenced(key);
                    return Err(e);
                }
                #[cfg(debug_assertions)]
                if let Some(pinned) = self.resident.get(&key) {
                    // The page still holds a pinned snapshot payload: the
                    // transferred frame must re-encode it exactly, or the
                    // trace/replay machinery has drifted.
                    let expected = pinned.encode();
                    assert_eq!(
                        &self.frame[..expected.len()],
                        &expected[..],
                        "transferred frame of page {id:?} drifted from the pinned snapshot"
                    );
                }
                let payload = Arc::new(T::decode(&self.frame));
                if self.buffer.contains(key) {
                    self.resident.insert(key, Arc::clone(&payload));
                }
                self.note_peak();
                Ok(payload)
            }
        }
    }

    /// Admits `key` as dirty, handling whatever the admission evicted
    /// (including `key` itself in the capacity-0 self-eviction case).
    fn admit_dirty(&mut self, key: u64) {
        match self.buffer.touch(key, true) {
            Admission::Hit => {}
            Admission::Miss { evicted } => self.handle_eviction(evicted),
        }
    }

    /// Write-back (metered) + residency release of an evicted page.
    fn handle_eviction(&mut self, evicted: Option<(u64, bool)>) {
        if let Some((key, dirty)) = evicted {
            if dirty {
                self.write_back(key, IoClass::Metered);
                self.stats.record_physical_write();
            }
            self.release_if_unreferenced(key);
        }
    }

    /// Drops the resident payload of `key` unless the buffer or a pin still
    /// references it — the single place the residency invariant
    /// (resident = members ∪ pinned) is enforced on the release side.
    fn release_if_unreferenced(&mut self, key: u64) {
        if !self.buffer.contains(key) && self.buffer.pin_count(key) == 0 {
            self.resident.remove(&key);
        }
    }

    /// Encodes the resident payload of a page into a zero-padded frame,
    /// seals the integrity trailer, and writes it to the backend under
    /// `class` — retrying transient faults under the [`RetryPolicy`].
    /// Reuses the scratch frame across calls — no allocation on the
    /// eviction path.
    ///
    /// Exhausted or persistent write failures panic: write-backs happen
    /// during build, eviction and flush, where losing a frame is
    /// service-fatal by the crate's failure model (queries only read).
    ///
    /// This is the one sanctioned write-side `IoClass`-forwarding funnel
    /// (allowlisted `CIJ-I301` in `lint.toml`): every *caller* must pass a
    /// literal class, which the lint enforces at those call sites.
    fn write_back(&mut self, key: u64, class: IoClass) {
        let page_size = self.frame.len();
        let mut frame = std::mem::take(&mut self.frame);
        frame.clear();
        self.resident
            .get(&key)
            .expect("write-back of a page with no decoded payload")
            .encode_into(&mut frame);
        let payload_len = frame.len();
        frame.resize(page_size, 0); // zero padding up to the page size
        seal_frame(&mut frame, payload_len);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.backend.write(key as u32, &frame, class) {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempt < self.retry.max_attempts => {
                    self.fault_write_retries += 1;
                    self.clock
                        .advance(self.retry.backoff_base_ticks << (attempt - 1).min(16));
                }
                Err(e) => panic!("write-back of frame {key} failed: {e}"),
            }
        }
        self.frame = frame;
    }
}

/// A pinned reference to a page's decoded payload, returned by
/// [`PageStore::peek`].
///
/// Dereferences to the payload. While any guard for a page is alive the
/// page is pinned: the LRU buffer will not evict it and the store keeps its
/// decoded payload resident. Dropping the last guard unpins the page and —
/// if it is not also a buffer member — releases the payload.
#[derive(Debug)]
pub struct PageRef<T: PagePayload> {
    store: Arc<Mutex<StoreInner<T>>>,
    key: u64,
    payload: Arc<T>,
}

impl<T: PagePayload> Deref for PageRef<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.payload
    }
}

impl<T: PagePayload> Drop for PageRef<T> {
    fn drop(&mut self) {
        let mut inner = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.buffer.unpin(self.key) {
            inner.release_if_unreferenced(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(buffer_pages: usize) -> PageStore<u32> {
        store_on(buffer_pages, StorageBackend::Heap)
    }

    fn store_on(buffer_pages: usize, backend: StorageBackend) -> PageStore<u32> {
        PageStore::new(
            PageStoreConfig::default()
                .with_buffer_pages(buffer_pages)
                .with_backend(backend),
        )
    }

    #[test]
    fn allocate_and_read_roundtrip() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(10);
            let b = s.allocate(20);
            assert_eq!(s.read(a), 10);
            assert_eq!(s.read(b), 20);
            assert_eq!(s.num_pages(), 2);
            assert_eq!(s.backend_kind(), backend);
        }
    }

    #[test]
    fn buffered_reads_hit_after_first_access() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(1);
            s.drop_buffer();
            s.stats().reset();
            s.read(a);
            s.read(a);
            s.read(a);
            let snap = s.stats().snapshot();
            assert_eq!(snap.physical_reads, 1);
            assert_eq!(snap.buffer_hits, 2);
        }
    }

    #[test]
    fn unbuffered_store_counts_every_read() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(0, backend);
            let a = s.allocate(1);
            s.stats().reset();
            for _ in 0..5 {
                assert_eq!(s.read(a), 1);
            }
            assert_eq!(s.stats().snapshot().physical_reads, 5);
        }
    }

    #[test]
    fn write_back_counts_on_eviction() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(1, backend);
            let a = s.allocate(1); // dirty in buffer
            let _b = s.allocate(2); // evicts a (dirty) -> physical write
            let snap = s.stats().snapshot();
            assert_eq!(snap.physical_writes, 1);
            assert_eq!(snap.logical_writes, 2);
            // Reading a again is a miss served from the backend frame.
            s.stats().reset();
            assert_eq!(s.read(a), 1);
            assert_eq!(s.stats().snapshot().physical_reads, 1);
        }
    }

    #[test]
    fn flush_writes_dirty_pages_once() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(10, backend);
            for i in 0..5 {
                s.allocate(i);
            }
            s.flush();
            let snap = s.stats().snapshot();
            assert_eq!(snap.physical_writes, 5);
            // A second flush has nothing left to write.
            s.flush();
            assert_eq!(s.stats().snapshot().physical_writes, 5);
        }
    }

    #[test]
    fn write_updates_payload() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(2, backend);
            let a = s.allocate(1);
            s.write(a, 42);
            assert_eq!(s.read(a), 42);
            assert_eq!(*s.peek(a), 42);
            // The overwrite survives eviction and a cold backend read.
            s.drop_buffer();
            assert_eq!(s.read(a), 42);
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let mut s = store(2);
        let a = s.allocate(1);
        let _ = s.read(PageId(a.0 + 7));
    }

    #[test]
    fn note_read_replays_exactly_like_read() {
        // Two stores with identical contents: replaying a page-id trace via
        // note_read must leave counters, buffer state and backend byte
        // counters identical to performing the reads directly.
        for backend in StorageBackend::ALL {
            let mut live = store_on(2, backend);
            let mut replay = store_on(2, backend);
            let ids: Vec<PageId> = (0..4).map(|i| live.allocate(i)).collect();
            for i in 0..4 {
                replay.allocate(i);
            }
            live.stats().reset();
            replay.stats().reset();
            let trace = [ids[0], ids[1], ids[0], ids[2], ids[3], ids[1], ids[0]];
            for &id in &trace {
                let _ = live.read(id);
            }
            for &id in &trace {
                replay.note_read(id);
            }
            assert_eq!(live.stats().snapshot(), replay.stats().snapshot());
            assert_eq!(
                live.buffer_keys_mru_to_lru(),
                replay.buffer_keys_mru_to_lru()
            );
            assert_eq!(live.backend_io(), replay.backend_io());
        }
    }

    #[test]
    fn read_with_accounts_exactly_like_read() {
        // Same trace through read on one store and read_with on another:
        // payloads, counters, buffer state and backend bytes must match.
        for backend in StorageBackend::ALL {
            let mut by_value = store_on(2, backend);
            let mut by_ref = store_on(2, backend);
            let ids: Vec<PageId> = (0..4).map(|i| by_value.allocate(i * 3)).collect();
            for i in 0..4 {
                by_ref.allocate(i * 3);
            }
            by_value.stats().reset();
            by_ref.stats().reset();
            let trace = [ids[0], ids[1], ids[0], ids[2], ids[3], ids[1], ids[0]];
            for &id in &trace {
                let expected = by_value.read(id);
                let got = by_ref.read_with(id, |v| *v);
                assert_eq!(got, expected);
            }
            assert_eq!(by_value.stats().snapshot(), by_ref.stats().snapshot());
            assert_eq!(
                by_value.buffer_keys_mru_to_lru(),
                by_ref.buffer_keys_mru_to_lru()
            );
            assert_eq!(by_value.backend_io(), by_ref.backend_io());
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn note_read_of_unallocated_page_panics() {
        let mut s = store(2);
        let a = s.allocate(1);
        s.note_read(PageId(a.0 + 9));
    }

    #[test]
    fn free_removes_page_from_count_and_buffer() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(1);
            let b = s.allocate(2);
            assert_eq!(s.num_pages(), 2);
            s.free(a);
            assert_eq!(s.num_pages(), 1);
            // The freed (dirty) page is not written back on flush.
            s.flush();
            assert_eq!(s.stats().snapshot().physical_writes, 1);
            assert_eq!(s.read(b), 2);
        }
    }

    #[test]
    fn buffer_fraction_sizing() {
        let mut s = store(0);
        for i in 0..100 {
            s.allocate(i);
        }
        s.set_buffer_fraction(0.02);
        assert_eq!(s.buffer_pages(), 2);
        s.set_buffer_fraction(0.005);
        assert_eq!(s.buffer_pages(), 1);
        s.set_buffer_fraction(0.0);
        assert_eq!(s.buffer_pages(), 0);
    }

    #[test]
    fn zero_fraction_disables_the_buffer_entirely() {
        let mut s = store(8);
        let a = s.allocate(7);
        s.set_buffer_fraction(0.0);
        assert_eq!(s.buffer_pages(), 0);
        s.stats().reset();
        s.read(a);
        s.read(a);
        // Every read is a miss once the buffer is gone.
        assert_eq!(s.stats().snapshot().physical_reads, 2);
        assert_eq!(s.stats().snapshot().buffer_hits, 0);
    }

    #[test]
    fn tiny_store_fractions_round_up_to_one_page() {
        // On stores so small that fraction * pages rounds to zero, a
        // positive fraction must still keep one buffer page.
        let mut s = store(0);
        s.allocate(1);
        s.set_buffer_fraction(0.001);
        assert_eq!(s.buffer_pages(), 1);
        // Even an empty store gets the one-page floor for fraction > 0 —
        // the buffer exists before data does.
        let mut empty = store(0);
        empty.set_buffer_fraction(0.5);
        assert_eq!(empty.buffer_pages(), 1);
    }

    #[test]
    fn refraction_after_growth_tracks_the_new_data_size() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(0, backend);
            for i in 0..50 {
                s.allocate(i);
            }
            s.set_buffer_fraction(0.1);
            assert_eq!(s.buffer_pages(), 5);
            // Re-apply the fraction after the store grew: capacity follows
            // the new num_pages.
            for i in 50..150 {
                s.allocate(i);
            }
            s.set_buffer_fraction(0.1);
            assert_eq!(s.buffer_pages(), 15);
            // Fill the buffer with dirty pages, then shrink: the evicted
            // dirty pages must be written back and accounted.
            for i in 0..15u32 {
                s.write(PageId(i), i * 3);
            }
            s.stats().reset();
            s.set_buffer_fraction(0.02); // 150 * 0.02 = 3 pages, shrink by 12
            assert_eq!(s.buffer_pages(), 3);
            assert_eq!(
                s.stats().snapshot().physical_writes,
                12,
                "shrink must write back exactly the evicted dirty pages"
            );
            // Data survives the churn.
            assert_eq!(s.read(PageId(0)), 0);
            assert_eq!(s.read(PageId(149)), 149);
        }
    }

    #[test]
    fn shared_stats_between_stores() {
        let stats = IoStats::new();
        let mut p: PageStore<u32> =
            PageStore::with_stats(PageStoreConfig::default(), stats.clone());
        let mut q: PageStore<u32> =
            PageStore::with_stats(PageStoreConfig::default(), stats.clone());
        let a = p.allocate(1);
        let b = q.allocate(2);
        p.read(a);
        q.read(b);
        assert_eq!(stats.snapshot().physical_reads, 2);
    }

    #[test]
    fn grow_buffer_preserves_cached_pages() {
        let mut s = store(2);
        let a = s.allocate(1);
        let b = s.allocate(2);
        s.set_buffer_pages(8);
        s.stats().reset();
        s.read(a);
        s.read(b);
        // Both pages were resident before the grow and must still hit.
        assert_eq!(s.stats().snapshot().buffer_hits, 2);
    }

    #[test]
    fn paper_default_differs_from_generic_default() {
        let paper = PageStoreConfig::paper_default();
        let generic = PageStoreConfig::default();
        assert_eq!(paper.page_size, DEFAULT_PAGE_SIZE);
        assert_eq!(paper.page_size, 1024);
        assert_ne!(
            paper.page_size, generic.page_size,
            "paper_default must not silently alias Default"
        );
        // Both defer buffer sizing to the fraction convention.
        assert_eq!(paper.buffer_pages, 0);
        assert_eq!(paper.backend, StorageBackend::Heap);
    }

    #[test]
    #[should_panic(expected = "page frame overflow")]
    fn oversized_payload_is_rejected_at_allocate() {
        // A u32 needs 4 bytes; a 3-byte page cannot hold it.
        let mut s: PageStore<u32> = PageStore::new(PageStoreConfig::default().with_page_size(3));
        s.allocate(1);
    }

    #[test]
    fn heap_and_file_stores_behave_identically() {
        // One interleaved workload, both backends: every counter, the buffer
        // state and every payload must match — the parity guarantee at the
        // store level.
        let mut heap = store_on(3, StorageBackend::Heap);
        let mut file = store_on(3, StorageBackend::File);
        for s in [&mut heap, &mut file] {
            let ids: Vec<PageId> = (0..8u32).map(|i| s.allocate(i * 11)).collect();
            s.write(ids[2], 999);
            for &id in &[ids[0], ids[5], ids[2], ids[7], ids[0], ids[2]] {
                let _ = s.read(id);
            }
            s.free(ids[3]);
            s.set_buffer_pages(2);
            for &id in &[ids[6], ids[1], ids[6]] {
                let _ = s.read(id);
            }
            s.flush();
        }
        assert_eq!(heap.stats().snapshot(), file.stats().snapshot());
        assert_eq!(heap.buffer_keys_mru_to_lru(), file.buffer_keys_mru_to_lru());
        assert_eq!(heap.num_pages(), file.num_pages());
        assert_eq!(heap.backend_io(), file.backend_io());
        for i in 0..8u32 {
            if i == 3 {
                continue;
            }
            assert_eq!(heap.read(PageId(i)), file.read(PageId(i)), "page {i}");
        }
    }

    #[test]
    fn file_store_serves_data_from_disk_after_cold_restart_of_the_buffer() {
        let mut s = store_on(4, StorageBackend::File);
        let ids: Vec<PageId> = (0..20u32).map(|i| s.allocate(i * 7 + 1)).collect();
        s.flush();
        let io_flushed = s.backend_io();
        assert_eq!(io_flushed.bytes_written as usize, 20 * s.page_size());
        s.drop_buffer();
        s.stats().reset();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(s.read(id), i as u32 * 7 + 1);
        }
        let snap = s.stats().snapshot();
        let io = s.backend_io().since(&io_flushed);
        assert_eq!(
            io.bytes_read,
            snap.physical_reads * s.page_size() as u64,
            "bytes actually read must equal counted physical reads × page size"
        );
    }

    #[test]
    fn metered_byte_contract_holds_for_every_backend() {
        // Both halves of the counting contract, all three backends: after a
        // mixed workload with evictions, flushes and drop_buffer resets,
        // bytes_read == physical_reads × page_size and bytes_written ==
        // physical_writes × page_size.
        for backend in StorageBackend::ALL {
            let mut s = store_on(3, backend);
            let ids: Vec<PageId> = (0..12u32).map(|i| s.allocate(i)).collect();
            s.flush();
            s.drop_buffer(); // unmetered write-backs (nothing dirty here)
            s.stats().reset();
            let before = s.backend_io();
            for &id in &[ids[0], ids[4], ids[0], ids[9], ids[2], ids[4]] {
                let _ = s.read(id);
            }
            s.write(ids[4], 777);
            s.set_buffer_pages(1); // shrink: evicts, one dirty write-back
            s.flush();
            let snap = s.stats().snapshot();
            let io = s.backend_io().since(&before);
            let ps = s.page_size() as u64;
            assert_eq!(io.bytes_read, snap.physical_reads * ps, "{backend}: reads");
            assert_eq!(
                io.bytes_written,
                snap.physical_writes * ps,
                "{backend}: writes"
            );
        }
    }

    #[test]
    fn drop_buffer_write_backs_are_unmetered_but_real() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let a = s.allocate(31); // dirty, never flushed
            let before = s.backend_io();
            s.stats().reset();
            s.drop_buffer();
            let io = s.backend_io().since(&before);
            // The frame moved — as unmetered traffic.
            assert_eq!(io.bytes_written, 0, "{backend}: metered bucket untouched");
            assert_eq!(
                io.unmetered_bytes_written,
                s.page_size() as u64,
                "{backend}: the dirty frame was really written"
            );
            assert_eq!(s.stats().snapshot().physical_writes, 0);
            // And the data survives the cold restart.
            assert_eq!(s.read(a), 31);
        }
    }

    #[test]
    fn peek_pins_and_survives_eviction_pressure() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(2, backend);
            let ids: Vec<PageId> = (0..6u32).map(|i| s.allocate(i * 5)).collect();
            s.flush();
            let guard = s.peek(ids[0]);
            assert_eq!(*guard, 0);
            assert_eq!(s.pinned_pages(), 1);
            // Thrash the buffer: the pinned page must keep its payload and
            // stay exempt from eviction throughout.
            for round in 0..3 {
                for &id in &ids[1..] {
                    let _ = s.read(id);
                }
                assert_eq!(*guard, 0, "round {round}");
            }
            drop(guard);
            assert_eq!(s.pinned_pages(), 0);
            // With the last guard gone and the page not a member, its
            // payload is released.
            assert!(s.resident_pages() <= s.buffer_pages());
        }
    }

    #[test]
    fn peek_does_not_touch_metered_state() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(2, backend);
            let ids: Vec<PageId> = (0..5u32).map(|i| s.allocate(i + 100)).collect();
            s.flush();
            s.drop_buffer();
            s.stats().reset();
            let _ = s.read(ids[0]);
            let _ = s.read(ids[1]);
            let counters = s.stats().snapshot();
            let buffer = s.buffer_keys_mru_to_lru();
            let metered = (s.backend_io().bytes_read, s.backend_io().bytes_written);
            // Peek resident and cold pages alike: nothing measured moves.
            {
                let g0 = s.peek(ids[0]); // buffer member
                let g4 = s.peek(ids[4]); // cold page -> unmetered decode
                assert_eq!((*g0, *g4), (100, 104));
            }
            assert_eq!(s.stats().snapshot(), counters);
            assert_eq!(s.buffer_keys_mru_to_lru(), buffer);
            assert_eq!(
                (s.backend_io().bytes_read, s.backend_io().bytes_written),
                metered
            );
            // The cold peek transferred real (unmetered) bytes.
            assert_eq!(s.backend_io().unmetered_bytes_read, s.page_size() as u64);
        }
    }

    #[test]
    fn residency_is_bounded_by_buffer_plus_pins_not_by_the_dataset() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(4, backend);
            let ids: Vec<PageId> = (0..64u32).map(|i| s.allocate(i)).collect();
            s.flush();
            // Hold a few pins while scanning everything repeatedly.
            let guards: Vec<PageRef<u32>> = ids[..3].iter().map(|&id| s.peek(id)).collect();
            for _ in 0..2 {
                for &id in &ids {
                    let _ = s.read(id);
                }
            }
            assert!(
                s.peak_resident_pages() <= s.buffer_pages() + s.peak_pinned_pages(),
                "{backend}: peak resident {} > buffer {} + peak pinned {}",
                s.peak_resident_pages(),
                s.buffer_pages(),
                s.peak_pinned_pages()
            );
            assert!(s.peak_resident_pages() < ids.len(), "{backend}: no mirror");
            drop(guards);
            s.drop_buffer();
            assert_eq!(s.resident_pages(), 0, "{backend}: nothing left resident");
        }
    }

    #[test]
    fn nested_peeks_share_one_pin_slot_per_page() {
        let mut s = store(2);
        let a = s.allocate(9);
        s.flush();
        s.drop_buffer();
        let g1 = s.peek(a);
        let g2 = s.peek(a);
        assert_eq!((*g1, *g2), (9, 9));
        assert_eq!(s.pinned_pages(), 1, "refcounted, not duplicated");
        assert_eq!(s.resident_pages(), 1);
        drop(g1);
        assert_eq!(s.pinned_pages(), 1, "second guard still holds the pin");
        drop(g2);
        assert_eq!(s.pinned_pages(), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn cloned_store_diverges_independently() {
        for backend in StorageBackend::ALL {
            let mut s = store_on(2, backend);
            let a = s.allocate(5);
            s.flush();
            let mut copy = s.clone();
            copy.write(a, 6);
            copy.flush();
            s.drop_buffer();
            copy.drop_buffer();
            assert_eq!(s.read(a), 5, "{backend}: original saw the clone's write");
            assert_eq!(copy.read(a), 6, "{backend}: clone lost its write");
        }
    }

    #[test]
    fn transient_faults_recover_invisibly_on_every_backend() {
        // The tentpole parity property at store level: a seeded transient
        // fault schedule changes no payload, no counter and no metered
        // byte — retries are invisible to results.
        use crate::fault::FaultSpec;
        for backend in StorageBackend::ALL {
            // The baseline is explicitly clean even when the environment
            // requests a profile (the CI transient pass).
            let mut clean: PageStore<u32> = PageStore::new(
                PageStoreConfig::default()
                    .with_buffer_pages(2)
                    .with_backend(backend)
                    .without_faults(),
            );
            let mut faulty: PageStore<u32> = PageStore::new(
                PageStoreConfig::default()
                    .with_buffer_pages(2)
                    .with_backend(backend)
                    .with_fault(FaultSpec::transient(0xFA17)),
            );
            for s in [&mut clean, &mut faulty] {
                let ids: Vec<PageId> = (0..16u32).map(|i| s.allocate(i * 13 + 1)).collect();
                s.flush();
                s.drop_buffer();
                s.stats().reset();
                for round in 0..4 {
                    for &id in &ids {
                        assert_eq!(s.read(id), id.0 * 13 + 1, "round {round}");
                    }
                }
                s.write(ids[3], 999);
                s.flush();
            }
            assert_eq!(
                clean.stats().snapshot(),
                faulty.stats().snapshot(),
                "{backend}"
            );
            assert_eq!(clean.backend_io(), faulty.backend_io(), "{backend}");
            let stats = faulty.fault_stats();
            assert!(
                stats.injected_read_faults > 0,
                "{backend}: schedule never fired: {stats:?}"
            );
            assert_eq!(
                stats.retries, stats.injected_read_faults,
                "{backend}: every injected read fault costs exactly one retry"
            );
            assert_eq!(
                stats.recoveries, stats.injected_read_faults,
                "{backend}: every retry recovers"
            );
            assert!(faulty.retry_clock_ticks() > 0, "{backend}: backoff charged");
            assert_eq!(clean.fault_stats(), crate::FaultStats::default());
        }
    }

    #[test]
    fn corrupt_frame_quarantines_and_fails_fast() {
        use crate::error::FaultKind;
        use crate::fault::FaultSpec;
        let mut s = store(0);
        let ids: Vec<PageId> = (0..4u32).map(|i| s.allocate(i + 50)).collect();
        s.flush();
        s.drop_buffer();
        s.inject_fault(FaultSpec::corrupt_frame(ids[1].0));
        // The affected page surfaces as a structured Corrupt error...
        let err = s.try_read(ids[1]).unwrap_err();
        assert_eq!(err.kind, FaultKind::Corrupt);
        assert_eq!(err.page, Some(ids[1].0));
        assert_eq!(s.quarantined_frames(), vec![ids[1].0]);
        // ...fails fast on the second attempt (no second transfer of the
        // known-bad frame)...
        let bit_flips = s.fault_stats().injected_bit_flips;
        let err2 = s.try_read(ids[1]).unwrap_err();
        assert_eq!(err2.kind, FaultKind::Corrupt);
        assert!(err2.detail.contains("quarantined"), "{err2}");
        assert_eq!(s.fault_stats().injected_bit_flips, bit_flips);
        // ...and peek sees the same contract.
        assert_eq!(s.try_peek(ids[1]).unwrap_err().kind, FaultKind::Corrupt);
        // Clean pages keep serving.
        for &id in &[ids[0], ids[2], ids[3]] {
            assert_eq!(s.try_read(id).unwrap(), id.0 + 50);
        }
        assert_eq!(s.fault_stats().quarantined_frames, 1);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_a_transient_error() {
        use crate::fault::FaultSpec;
        let mut s: PageStore<u32> =
            PageStore::new(PageStoreConfig::default().with_fault(FaultSpec::transient(0x0BAD_5EED)));
        s.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            backoff_base_ticks: 1,
        });
        let id = s.allocate(7);
        s.flush();
        s.drop_buffer();
        // With no retries allowed, some unbuffered read eventually hits an
        // injected fault and must surface it as a transient error.
        let mut saw_error = false;
        for _ in 0..200 {
            match s.try_read(id) {
                Ok(v) => assert_eq!(v, 7),
                Err(e) => {
                    assert!(e.is_transient(), "{e}");
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "schedule never fired in 200 unbuffered reads");
        // The store stays fully usable afterwards.
        assert_eq!(s.read(id), 7);
    }

    #[test]
    fn clone_carries_no_pins() {
        let mut s = store(2);
        let a = s.allocate(1);
        s.flush();
        s.drop_buffer();
        let guard = s.peek(a);
        let copy = s.clone();
        assert_eq!(s.pinned_pages(), 1);
        assert_eq!(copy.pinned_pages(), 0, "clone has no outstanding guards");
        assert_eq!(copy.resident_pages(), 0, "pinned-only pages do not carry");
        drop(guard);
    }
}
