//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the macro and builder surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`black_box`])
//! with a deliberately simple measurement loop: each benchmark body runs
//! `sample_size` times and the mean wall-clock time is printed. No
//! statistics, plots or baselines — just enough to keep `cargo bench`
//! meaningful without network access to crates.io.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, passed to every function registered with
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing point in real criterion).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_id: function_id.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_id: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function_id.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_id, self.parameter)
        }
    }
}

/// Passed to benchmark bodies; [`Bencher::iter`] times the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine` (the measurement sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iterations == 0 {
        println!("  {name}: no iterations recorded");
    } else {
        let mean = b.elapsed / b.iterations as u32;
        println!("  {name}: {mean:?} mean over {} iterations", b.iterations);
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iterations, 2);
    }
}
