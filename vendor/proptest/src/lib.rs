//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], range and tuple
//! strategies, [`Strategy::prop_map`] and [`collection::vec`] — as plain
//! random-case testing (deterministic per test name, no shrinking).
//! Vendored because the build environment has no network access.

#![deny(missing_docs)]
#![warn(clippy::all)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving value generation for one test case.
///
/// Seeded from the fully-qualified test name and the case index, so every
/// property sees a reproducible but test-specific stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the generator for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn` runs `config.cases` times with fresh
/// random inputs drawn from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $crate::__proptest_case!(prop_rng, [$($args)*] $body);
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, [] $body:block) => {
        // The closure gives `prop_assume!` an early-exit (`return`) that
        // skips only the current case.
        #[allow(clippy::redundant_closure_call)]
        (|| $body)();
    };
    ($rng:ident, [$arg:pat in $strat:expr] $body:block) => {{
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case!($rng, [] $body);
    }};
    ($rng:ident, [$arg:pat in $strat:expr, $($restargs:tt)*] $body:block) => {{
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case!($rng, [$($restargs)*] $body);
    }};
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100).prop_map(|(a, b)| (a * 2, b * 2 + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -5i64..5) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn prop_map_applies(p in parity_pair()) {
            prop_assert_eq!(p.0 % 2, 0);
            prop_assert_eq!(p.1 % 2, 1);
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0.0..1.0f64, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name_and_case() {
        use rand::RngCore;
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let mut c = crate::TestRng::for_case("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
