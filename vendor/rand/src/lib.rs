//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so the subset of `rand`'s
//! API that the reproduction actually uses is vendored here:
//!
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding,
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of the primitive
//!   numeric types,
//! * [`rngs::StdRng`] — a deterministic generator (xoshiro256\*\* seeded via
//!   SplitMix64, the construction recommended by the xoshiro authors).
//!
//! The generated streams differ from the real `rand` crate's `StdRng`
//! (ChaCha12), which is fine: the workspace only relies on determinism for a
//! fixed seed and on good statistical uniformity, never on a specific
//! stream.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the only constructor style the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value uniformly distributed in `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the standard bits-to-double construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng.next_u64()) * span;
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_single(rng) as f32
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (*self.start() as f64..=*self.end() as f64).sample_single(rng) as f32
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo sampling: the bias is < span / 2^64, irrelevant for
                // the workload-generation use in this workspace.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ready-made generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0f64).to_bits(),
                b.gen_range(0.0..1.0f64).to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3.0..5.0f64);
            assert!((3.0..5.0).contains(&v));
            let w = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 appear");
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-3..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
