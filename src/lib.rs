//! # cij — Common Influence Join for spatial pointsets
//!
//! A Rust reproduction of *Yiu, Mamoulis & Karras, "Common Influence Join: A
//! Natural Join Operation for Spatial Pointsets", ICDE 2008*.
//!
//! Given two pointsets `P` and `Q`, the **common influence join** `CIJ(P, Q)`
//! returns every pair `(p, q)` such that some location in space is closer to
//! `p` than to any other point of `P` *and* closer to `q` than to any other
//! point of `Q` — equivalently, the Voronoi cells of `p` and `q` intersect.
//! Unlike ε-distance joins or k-closest-pair joins the operation is
//! parameter-free.
//!
//! ## The `QueryEngine`
//!
//! All evaluation goes through one entry point, the [`QueryEngine`]: it owns
//! the configuration, builds R-tree workloads, and runs — or **streams** —
//! any of the three join algorithms, plus the multiway and grouped-NN
//! extensions. The paper's headline claim about NM-CIJ, that it is
//! *non-blocking*, is directly observable through [`QueryEngine::stream`]:
//! the returned [`PairStream`] is a lazy iterator, and pulling its first
//! pair performs only the page accesses needed for the first productive
//! leaf of `RQ`.
//!
//! ```
//! use cij::prelude::*;
//!
//! // Two tiny datasets: restaurants (P) and cinemas (Q).
//! let p = cij::datagen::uniform_points(200, &Rect::DOMAIN, 1);
//! let q = cij::datagen::uniform_points(150, &Rect::DOMAIN, 2);
//!
//! let engine = QueryEngine::new(CijConfig::default());
//!
//! // Blocking: run the non-blocking algorithm to completion.
//! let result = engine.join(&p, &q, Algorithm::NmCij);
//! assert!(result.pairs.len() >= p.len().max(q.len()));
//! println!("{} CIJ pairs using {} page accesses", result.pairs.len(), result.page_accesses());
//!
//! // Streaming: consume pairs while the join is still running.
//! let mut workload = engine.build_workload(&p, &q);
//! let mut stream = engine.stream(&mut workload, Algorithm::NmCij);
//! let first = stream.next().expect("non-empty join");
//! println!("first pair {first:?} after {:?} samples", stream.progress_so_far().len());
//! ```
//!
//! ## Workspace layout
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`geom`] — geometric primitives (points, rectangles, convex polygons,
//!   bisector halfplanes, Φ regions, Hilbert curve),
//! * [`pagestore`] — simulated 1 KB disk pages, LRU buffer, I/O statistics
//!   (including the cell-cache hit/miss/eviction counters),
//! * [`rtree`] — the disk-based R-tree (insertion, bulk loading, NN search,
//!   spatial joins),
//! * [`voronoi`] — R-tree based Voronoi cell computation (BF-VOR,
//!   BatchVoronoi and its cache-aware variant, TP-VOR, diagram builders),
//! * [`datagen`] — workload generators (uniform, clustered, real-dataset
//!   stand-ins),
//! * [`core`] — the CIJ algorithms (FM-CIJ, PM-CIJ, streaming NM-CIJ), the
//!   [`QueryEngine`]/[`PairStream`] execution core, the two-mode
//!   (metered/fast) executor, the shared bounded [`CellCache`] and the
//!   concurrent request server ([`core::service`]).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use cij_core as core;
pub use cij_datagen as datagen;
pub use cij_geom as geom;
pub use cij_pagestore as pagestore;
pub use cij_rtree as rtree;
pub use cij_voronoi as voronoi;

pub use cij_core::{
    Algorithm, CellCache, CijConfig, CijExecutor, ExecMode, PairStream, QueryEngine, StorageBackend,
};

/// Commonly used items, for `use cij::prelude::*`.
pub mod prelude {
    pub use cij_core::{
        batch_conditional_filter, batch_conditional_filter_with, brute_force_cij,
        brute_force_multiway_cij, fm_cij, multiway_cij, nm_cij, pm_cij, Algorithm, Batch,
        CacheBudget, CacheLease, CellCache, CijConfig, CijExecutor, CijOutcome, CijService,
        Completion, EngineSnapshot, ExecMode, FilterKernel, FilterOptions, FilterStats, LeafLayout,
        LeafWatermark, ManualClock, MultiwayCounters, MultiwayDriver, MultiwayOutcome,
        MultiwayProbe, MultiwayTuple, MultiwayWorkload, PairStream, QueryEngine, QueryError,
        QueueFull, Request, ResponseHandle, ServiceClock, ServiceConfig, StorageBackend,
        SystemClock, TupleStream, Workload,
    };
    pub use cij_datagen::{clustered_points, uniform_points, ClusterSpec, RealDataset};
    pub use cij_geom::{ConvexPolygon, Point, Rect};
    pub use cij_pagestore::{FaultKind, FaultSpec, FaultStats, IoStats, PageIoError, RetryPolicy};
    pub use cij_rtree::{PointObject, RTree, RTreeConfig};
    pub use cij_voronoi::{batch_voronoi, batch_voronoi_cached, single_voronoi, tp_voronoi};
}
