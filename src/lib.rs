//! # cij — Common Influence Join for spatial pointsets
//!
//! A Rust reproduction of *Yiu, Mamoulis & Karras, "Common Influence Join: A
//! Natural Join Operation for Spatial Pointsets", ICDE 2008*.
//!
//! Given two pointsets `P` and `Q`, the **common influence join** `CIJ(P, Q)`
//! returns every pair `(p, q)` such that some location in space is closer to
//! `p` than to any other point of `P` *and* closer to `q` than to any other
//! point of `Q` — equivalently, the Voronoi cells of `p` and `q` intersect.
//! Unlike ε-distance joins or k-closest-pair joins the operation is
//! parameter-free.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`geom`] — geometric primitives (points, rectangles, convex polygons,
//!   bisector halfplanes, Φ regions, Hilbert curve),
//! * [`pagestore`] — simulated 1 KB disk pages, LRU buffer, I/O statistics,
//! * [`rtree`] — the disk-based R-tree (insertion, bulk loading, NN search,
//!   spatial joins),
//! * [`voronoi`] — R-tree based Voronoi cell computation (BF-VOR,
//!   BatchVoronoi, TP-VOR, diagram builders),
//! * [`datagen`] — workload generators (uniform, clustered, real-dataset
//!   stand-ins),
//! * [`core`] — the CIJ algorithms themselves (FM-CIJ, PM-CIJ, NM-CIJ).
//!
//! ## Quickstart
//!
//! ```
//! use cij::prelude::*;
//!
//! // Two tiny datasets: restaurants (P) and cinemas (Q).
//! let p = cij::datagen::uniform_points(200, &Rect::DOMAIN, 1);
//! let q = cij::datagen::uniform_points(150, &Rect::DOMAIN, 2);
//!
//! let config = CijConfig::default();
//! let mut workload = Workload::build(&p, &q, &config);
//! let result = nm_cij(&mut workload, &config);
//!
//! // Every point participates in the (parameter-free) join result.
//! assert!(result.pairs.len() >= p.len().max(q.len()));
//! println!("{} CIJ pairs using {} page accesses", result.pairs.len(), result.page_accesses());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use cij_core as core;
pub use cij_datagen as datagen;
pub use cij_geom as geom;
pub use cij_pagestore as pagestore;
pub use cij_rtree as rtree;
pub use cij_voronoi as voronoi;

/// Commonly used items, for `use cij::prelude::*`.
pub mod prelude {
    pub use cij_core::{
        brute_force_cij, fm_cij, nm_cij, pm_cij, Algorithm, CijConfig, CijOutcome, Workload,
    };
    pub use cij_datagen::{clustered_points, uniform_points, ClusterSpec, RealDataset};
    pub use cij_geom::{ConvexPolygon, Point, Rect};
    pub use cij_pagestore::IoStats;
    pub use cij_rtree::{PointObject, RTree, RTreeConfig};
    pub use cij_voronoi::{batch_voronoi, single_voronoi, tp_voronoi};
}
