//! Integration tests for the parallel NM-CIJ execution path: with
//! `worker_threads` > 1 the join must be observably indistinguishable from
//! the sequential run — same pairs in the same order, same NM counters,
//! same page-access totals — on uniform and clustered workloads, under
//! cache-eviction pressure, and through the streaming interface.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;

/// Small pages so even modest datasets produce multi-level trees; honours
/// the `CIJ_WORKER_THREADS` override CI uses for its second test pass.
fn test_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_env_overrides()
}

fn clustered(n: usize, seed: u64) -> Vec<Point> {
    clustered_points(
        &ClusterSpec {
            n,
            clusters: 5,
            sigma_fraction: 0.03,
            background_fraction: 0.15,
            size_skew: 0.8,
        },
        &Rect::DOMAIN,
        seed,
    )
}

fn run_nm(p: &[Point], q: &[Point], config: &CijConfig) -> CijOutcome {
    let engine = QueryEngine::new(*config);
    engine.join(p, q, Algorithm::NmCij)
}

/// Asserts the full observable-equality contract between a parallel and the
/// sequential run.
fn assert_parity(parallel: &CijOutcome, sequential: &CijOutcome, label: &str) {
    assert_eq!(
        parallel.pairs, sequential.pairs,
        "{label}: pair sequence (set or order) diverged"
    );
    assert_eq!(parallel.nm, sequential.nm, "{label}: NM counters diverged");
    assert_eq!(
        parallel.page_accesses(),
        sequential.page_accesses(),
        "{label}: page-access totals diverged"
    );
    assert_eq!(
        parallel.progress, sequential.progress,
        "{label}: per-leaf progress samples diverged"
    );
}

#[test]
fn parallel_equals_sequential_on_uniform_data() {
    let base = test_config();
    let p = uniform_points(600, &Rect::DOMAIN, 9301);
    let q = uniform_points(600, &Rect::DOMAIN, 9302);
    let sequential = run_nm(&p, &q, &base.with_worker_threads(1));
    for threads in [2usize, 4] {
        let parallel = run_nm(&p, &q, &base.with_worker_threads(threads));
        assert_parity(&parallel, &sequential, &format!("uniform, T={threads}"));
    }
}

#[test]
fn parallel_equals_sequential_on_clustered_data() {
    let base = test_config();
    let p = clustered(500, 9303);
    let q = clustered(550, 9304);
    let sequential = run_nm(&p, &q, &base.with_worker_threads(1));
    for threads in [2usize, 4] {
        let parallel = run_nm(&p, &q, &base.with_worker_threads(threads));
        assert_parity(&parallel, &sequential, &format!("clustered, T={threads}"));
    }
}

#[test]
fn parallel_stream_yields_the_sequential_pair_sequence_lazily() {
    // Pull the parallel stream one pair at a time and compare the sequence
    // (not just the drained result) against the sequential stream.
    let base = test_config();
    let p = uniform_points(400, &Rect::DOMAIN, 9305);
    let q = uniform_points(400, &Rect::DOMAIN, 9306);

    let sequential: Vec<(u64, u64)> = {
        let engine = QueryEngine::new(base.with_worker_threads(1));
        let mut w = engine.build_workload(&p, &q);
        engine.stream(&mut w, Algorithm::NmCij).collect()
    };
    let engine = QueryEngine::new(base.with_worker_threads(4));
    let mut w = engine.build_workload(&p, &q);
    let mut stream = engine.stream(&mut w, Algorithm::NmCij);
    for (i, expected) in sequential.iter().enumerate() {
        assert_eq!(
            stream.next().as_ref(),
            Some(expected),
            "pair {i} diverged between parallel and sequential streams"
        );
    }
    assert_eq!(stream.next(), None, "parallel stream yielded extra pairs");
}

#[test]
fn parallel_run_agrees_with_the_brute_force_oracle() {
    let config = test_config().with_worker_threads(4);
    let p = uniform_points(300, &Rect::DOMAIN, 9307);
    let q = clustered(300, 9308);
    let outcome = run_nm(&p, &q, &config);
    assert_eq!(
        outcome.sorted_pairs(),
        brute_force_cij(&p, &q, &config.domain)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache evictions under concurrency never change results: for random
    /// pointsets and a randomly squeezed reuse buffer, the parallel join
    /// equals the sequential join with the same capacity *and* the
    /// eviction-free reference result.
    #[test]
    fn concurrent_evictions_never_change_results(
        seed in 0u64..1_000,
        capacity in 1usize..12,
        threads in 2usize..5,
    ) {
        let p = uniform_points(180, &Rect::DOMAIN, 77_000 + seed);
        let q = clustered(180, 78_000 + seed);
        let squeezed = test_config().with_cell_cache_capacity(capacity);
        let sequential = run_nm(&p, &q, &squeezed.with_worker_threads(1));
        let parallel = run_nm(&p, &q, &squeezed.with_worker_threads(threads));
        prop_assert_eq!(&parallel.pairs, &sequential.pairs);
        prop_assert_eq!(parallel.nm, sequential.nm);
        prop_assert_eq!(parallel.page_accesses(), sequential.page_accesses());
        // And eviction pressure itself never perturbs the join result.
        let roomy = run_nm(&p, &q, &test_config().with_worker_threads(threads));
        prop_assert_eq!(parallel.sorted_pairs(), roomy.sorted_pairs());
    }
}
