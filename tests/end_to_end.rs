//! End-to-end integration tests spanning every crate of the workspace:
//! data generation → R-tree indexing → Voronoi computation → CIJ algorithms,
//! checked against the brute-force oracle and against each other.

use cij::prelude::*;
use cij::rtree::RTreeConfig;

/// Small pages so even modest datasets produce multi-level trees; honours
/// the `CIJ_WORKER_THREADS` / `CIJ_STORAGE` overrides CI uses to rerun
/// this suite over the parallel path and the file storage backend.
fn test_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_env_overrides()
}

/// The unified entry point every integration test goes through.
fn engine() -> QueryEngine {
    QueryEngine::new(test_config())
}

#[test]
fn all_algorithms_agree_with_oracle_on_uniform_data() {
    let config = test_config();
    let p = uniform_points(120, &Rect::DOMAIN, 1001);
    let q = uniform_points(140, &Rect::DOMAIN, 1002);
    let oracle = brute_force_cij(&p, &q, &config.domain);
    let engine = engine();
    for alg in Algorithm::ALL {
        let outcome = engine.join(&p, &q, alg);
        assert_eq!(outcome.sorted_pairs(), oracle, "{} disagrees", alg.name());
    }
}

#[test]
fn all_algorithms_agree_with_oracle_on_clustered_data() {
    let config = test_config();
    let p = clustered_points(
        &ClusterSpec {
            n: 150,
            clusters: 6,
            sigma_fraction: 0.02,
            background_fraction: 0.1,
            size_skew: 0.9,
        },
        &Rect::DOMAIN,
        2001,
    );
    let q = clustered_points(
        &ClusterSpec {
            n: 130,
            clusters: 4,
            sigma_fraction: 0.05,
            background_fraction: 0.2,
            size_skew: 0.5,
        },
        &Rect::DOMAIN,
        2002,
    );
    let oracle = brute_force_cij(&p, &q, &config.domain);
    let engine = engine();
    for alg in Algorithm::ALL {
        let outcome = engine.join(&p, &q, alg);
        assert_eq!(outcome.sorted_pairs(), oracle, "{} disagrees", alg.name());
    }
}

#[test]
fn all_algorithms_agree_on_real_like_samples() {
    let config = test_config();
    // Tiny scale so the oracle stays tractable.
    let p = RealDataset::PA.generate_scaled(0.002);
    let q = RealDataset::PP.generate_scaled(0.001);
    let oracle = brute_force_cij(&p, &q, &config.domain);
    let engine = engine();
    for alg in Algorithm::ALL {
        assert_eq!(
            engine.join(&p, &q, alg).sorted_pairs(),
            oracle,
            "{} disagrees on real-like data",
            alg.name()
        );
    }
}

#[test]
fn asymmetric_cardinalities_are_handled() {
    let config = test_config();
    let p = uniform_points(30, &Rect::DOMAIN, 3001);
    let q = uniform_points(300, &Rect::DOMAIN, 3002);
    let oracle = brute_force_cij(&p, &q, &config.domain);
    let engine = engine();
    for alg in Algorithm::ALL {
        assert_eq!(engine.join(&p, &q, alg).sorted_pairs(), oracle);
    }
    // And the mirrored join swaps pair components.
    let mirrored = brute_force_cij(&q, &p, &config.domain);
    let mut swapped: Vec<(u64, u64)> = oracle.iter().map(|&(a, b)| (b, a)).collect();
    swapped.sort_unstable();
    assert_eq!(mirrored, swapped);
}

#[test]
fn tiny_datasets_and_edge_cardinalities() {
    let config = test_config();
    for (np, nq) in [(1, 1), (1, 10), (7, 3)] {
        let p = uniform_points(np, &Rect::DOMAIN, 4000 + np as u64);
        let q = uniform_points(nq, &Rect::DOMAIN, 5000 + nq as u64);
        let oracle = brute_force_cij(&p, &q, &config.domain);
        let engine = engine();
        for alg in Algorithm::ALL {
            assert_eq!(
                engine.join(&p, &q, alg).sorted_pairs(),
                oracle,
                "{} on |P|={np}, |Q|={nq}",
                alg.name()
            );
        }
    }
}

#[test]
fn cost_ordering_matches_the_paper() {
    // The headline experimental finding: NM-CIJ < PM-CIJ < FM-CIJ in page
    // accesses, and NM-CIJ stays above (but close to) the LB lower bound.
    // Pinned to metered execution: it is the measurement oracle, and fast
    // mode deliberately reports logical snapshot reads instead of buffered
    // physical page accesses, which would skew this comparison under the
    // `CIJ_EXEC_MODE=fast` CI pass.
    let p = uniform_points(1_500, &Rect::DOMAIN, 6001);
    let q = uniform_points(1_500, &Rect::DOMAIN, 6002);
    let engine = QueryEngine::new(test_config().with_exec_mode(ExecMode::Metered));
    let mut costs = Vec::new();
    let mut lb = 0;
    for alg in Algorithm::ALL {
        let mut w = engine.build_workload(&p, &q);
        lb = w.lower_bound_io();
        let outcome = engine.run(&mut w, alg);
        costs.push((alg, outcome.page_accesses()));
    }
    let fm = costs[0].1;
    let pm = costs[1].1;
    let nm = costs[2].1;
    assert!(nm < pm, "NM ({nm}) must beat PM ({pm})");
    assert!(pm < fm, "PM ({pm}) must beat FM ({fm})");
    assert!(nm >= lb, "NM ({nm}) cannot beat the lower bound ({lb})");
}

#[test]
fn voronoi_pipeline_is_consistent_with_join_results() {
    // Cross-crate invariant: a pair is in the CIJ result iff the two exact
    // Voronoi cells (computed through the rtree+voronoi stack) intersect.
    let config = test_config();
    let p = uniform_points(90, &Rect::DOMAIN, 7001);
    let q = uniform_points(80, &Rect::DOMAIN, 7002);
    let engine = engine();
    let outcome = engine.join(&p, &q, Algorithm::NmCij);

    let mut wp = Workload::build(&p, &q, &config);
    let cells_p: Vec<ConvexPolygon> = (0..p.len())
        .map(|i| {
            single_voronoi(
                &mut wp.rp,
                p[i],
                cij::rtree::ObjectId(i as u64),
                &config.domain,
            )
        })
        .collect();
    let cells_q: Vec<ConvexPolygon> = (0..q.len())
        .map(|i| {
            single_voronoi(
                &mut wp.rq,
                q[i],
                cij::rtree::ObjectId(i as u64),
                &config.domain,
            )
        })
        .collect();

    let pairs = outcome.sorted_pairs();
    for (i, cell_p) in cells_p.iter().enumerate() {
        for (j, cell_q) in cells_q.iter().enumerate() {
            let expected = cell_p.intersects(cell_q);
            let in_result = pairs.binary_search(&(i as u64, j as u64)).is_ok();
            assert_eq!(
                expected, in_result,
                "pair ({i}, {j}) mismatch between cell intersection and join result"
            );
        }
    }
}

#[test]
fn buffer_size_monotonically_helps_io() {
    let p = uniform_points(2_000, &Rect::DOMAIN, 8001);
    let q = uniform_points(2_000, &Rect::DOMAIN, 8002);
    let mut previous = u64::MAX;
    for fraction in [0.005, 0.02, 0.08] {
        let engine = QueryEngine::new(test_config().with_buffer_fraction(fraction));
        let io = engine.join(&p, &q, Algorithm::NmCij).page_accesses();
        assert!(
            io <= previous,
            "I/O should not increase with a larger buffer ({io} after {previous})"
        );
        previous = io;
    }
}
