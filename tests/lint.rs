//! Tier-1 gate: the workspace must be lint-clean.
//!
//! Runs the `cij_lint` invariant checker (determinism, unsafe audit, I/O
//! classification, atomics, concurrency — see `crates/lint/src/lib.rs` for
//! the rule catalogue) over the whole workspace in-process, applying the
//! `lint.toml` allowlist. Any surviving diagnostic fails plain
//! `cargo test -q`, so the contracts hold on every change, not just in CI.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = cij_lint::run(root).expect("lint engine runs");
    assert!(
        report.diagnostics.is_empty(),
        "cij_lint found contract violations:\n{report}"
    );
    // Guard against the scan silently going shallow (wrong root, skipped
    // tree): the workspace has far more production files than this.
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan: {} files",
        report.files_scanned
    );
}
