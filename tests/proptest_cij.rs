//! Property-based integration tests: the CIJ invariants must hold for
//! arbitrary small pointsets, not just the hand-picked ones.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;

/// Honours the `CIJ_WORKER_THREADS` / `CIJ_STORAGE` overrides CI uses to
/// rerun this suite over the parallel path and the file storage backend.
fn test_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_env_overrides()
}

fn pointset(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..10_000.0f64, 0.0..10_000.0f64), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn nm_cij_matches_oracle(p in pointset(40), q in pointset(40)) {
        let config = test_config();
        let oracle = brute_force_cij(&p, &q, &config.domain);
        let mut w = Workload::build(&p, &q, &config);
        let outcome = nm_cij(&mut w, &config);
        prop_assert_eq!(outcome.sorted_pairs(), oracle);
    }

    #[test]
    fn fm_and_pm_agree(p in pointset(35), q in pointset(35)) {
        let config = test_config();
        let fm = {
            let mut w = Workload::build(&p, &q, &config);
            fm_cij(&mut w, &config).sorted_pairs()
        };
        let pm = {
            let mut w = Workload::build(&p, &q, &config);
            pm_cij(&mut w, &config).sorted_pairs()
        };
        prop_assert_eq!(fm, pm);
    }

    #[test]
    fn every_point_participates(p in pointset(30), q in pointset(30)) {
        // Footnote 3 of the paper: each p ∈ P is contained in some cell of
        // Vor(Q) and vice versa, so every point appears in the result.
        let config = test_config();
        let mut w = Workload::build(&p, &q, &config);
        let pairs = nm_cij(&mut w, &config).pairs;
        for i in 0..p.len() as u64 {
            prop_assert!(pairs.iter().any(|&(a, _)| a == i));
        }
        for j in 0..q.len() as u64 {
            prop_assert!(pairs.iter().any(|&(_, b)| b == j));
        }
    }

    #[test]
    fn join_is_symmetric_under_input_swap(p in pointset(25), q in pointset(25)) {
        let config = test_config();
        let forward = {
            let mut w = Workload::build(&p, &q, &config);
            nm_cij(&mut w, &config).sorted_pairs()
        };
        let backward = {
            let mut w = Workload::build(&q, &p, &config);
            nm_cij(&mut w, &config).sorted_pairs()
        };
        let mut swapped: Vec<(u64, u64)> = backward.into_iter().map(|(a, b)| (b, a)).collect();
        swapped.sort_unstable();
        prop_assert_eq!(forward, swapped);
    }

    #[test]
    fn self_join_includes_the_diagonal_and_neighbours(p in pointset(25)) {
        // Joining a pointset with itself must relate every point to itself
        // (its cell trivially intersects itself). Note: full symmetry of the
        // self-join result is *not* asserted here because in a self-join
        // three Voronoi cells generically meet at a single vertex, so many
        // pairs touch at exactly one point — a configuration where the
        // floating-point intersection predicate may legitimately flip either
        // way. Cross-algorithm agreement on generic (P, Q) inputs is covered
        // by the other properties and by the oracle tests.
        let config = test_config();
        let mut w = Workload::build(&p, &p, &config);
        let pairs = nm_cij(&mut w, &config).sorted_pairs();
        for i in 0..p.len() as u64 {
            prop_assert!(pairs.binary_search(&(i, i)).is_ok(), "missing ({i},{i})");
        }
        // Every pair relates points whose cells really do intersect under
        // the same geometric predicate (sanity of the reported ids).
        for &(a, b) in &pairs {
            prop_assert!((a as usize) < p.len() && (b as usize) < p.len());
        }
    }
}
