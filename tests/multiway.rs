//! Integration tests for the leaf-batched, streaming, parallel multiway
//! CIJ: oracle parity on uniform and clustered data, batched-vs-per-tuple
//! probe equality, cost-driven vs fixed driver-tree selection, exact thread
//! parity at `worker_threads` ∈ {1, 4}, heap-vs-file storage parity,
//! streaming laziness/watermarks, and a proptest over random workloads.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;

/// Small pages so even modest datasets produce multi-level trees; honours
/// the `CIJ_WORKER_THREADS` / `CIJ_STORAGE` overrides CI uses for its
/// second and third test passes.
fn test_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_env_overrides()
}

fn clustered(n: usize, seed: u64) -> Vec<Point> {
    clustered_points(
        &ClusterSpec {
            n,
            clusters: 5,
            sigma_fraction: 0.03,
            background_fraction: 0.15,
            size_skew: 0.8,
        },
        &Rect::DOMAIN,
        seed,
    )
}

fn run_multiway(sets: &[Vec<Point>], config: &CijConfig) -> MultiwayOutcome {
    QueryEngine::new(*config).multiway(sets)
}

/// Asserts the full observable-equality contract between two multiway runs:
/// tuple ids (set *and* order), every counter, page accesses, progress
/// samples and watermarks.
fn assert_parity(a: &MultiwayOutcome, b: &MultiwayOutcome, label: &str) {
    let a_ids: Vec<&Vec<u64>> = a.tuples.iter().map(|t| &t.ids).collect();
    let b_ids: Vec<&Vec<u64>> = b.tuples.iter().map(|t| &t.ids).collect();
    assert_eq!(
        a_ids, b_ids,
        "{label}: tuple sequence (set or order) diverged"
    );
    assert_eq!(a.counters, b.counters, "{label}: counters diverged");
    assert_eq!(
        a.page_accesses, b.page_accesses,
        "{label}: page-access totals diverged"
    );
    assert_eq!(a.progress, b.progress, "{label}: progress samples diverged");
    assert_eq!(a.watermarks, b.watermarks, "{label}: watermarks diverged");
}

#[test]
fn three_way_matches_the_oracle_on_uniform_data() {
    let config = test_config();
    let sets = vec![
        uniform_points(40, &Rect::DOMAIN, 15_001),
        uniform_points(45, &Rect::DOMAIN, 15_002),
        uniform_points(35, &Rect::DOMAIN, 15_003),
    ];
    let outcome = run_multiway(&sets, &config);
    assert_eq!(
        outcome.sorted_ids(),
        brute_force_multiway_cij(&sets, &config.domain)
    );
    assert!(!outcome.tuples.is_empty());
}

#[test]
fn three_way_matches_the_oracle_on_clustered_data() {
    let config = test_config();
    let sets = vec![
        clustered(40, 15_004),
        clustered(45, 15_005),
        clustered(35, 15_006),
    ];
    let outcome = run_multiway(&sets, &config);
    assert_eq!(
        outcome.sorted_ids(),
        brute_force_multiway_cij(&sets, &config.domain)
    );
    assert!(!outcome.tuples.is_empty());
}

#[test]
fn batched_and_per_tuple_probes_produce_identical_results() {
    let config = test_config();
    let sets = vec![
        clustered(150, 15_007),
        clustered(150, 15_008),
        clustered(150, 15_009),
    ];
    let batched = run_multiway(&sets, &config);
    let per_tuple = run_multiway(&sets, &config.with_multiway_probe(MultiwayProbe::PerTuple));
    assert_eq!(batched.sorted_ids(), per_tuple.sorted_ids());
    assert!(batched.counters.cells_computed.iter().sum::<u64>() > 0);
    // Identical tuples, but strictly fewer filter invocations and examined
    // points.
    assert!(batched.counters.filter_probes < per_tuple.counters.filter_probes);
    assert!(batched.counters.filter_points_examined <= per_tuple.counters.filter_points_examined);
}

#[test]
fn thread_parity_is_exact_at_one_and_four_workers() {
    let base = test_config();
    let sets = vec![
        clustered(250, 15_010),
        clustered(250, 15_011),
        clustered(250, 15_012),
    ];
    let sequential = run_multiway(&sets, &base.with_worker_threads(1));
    for threads in [2usize, 4] {
        let parallel = run_multiway(&sets, &base.with_worker_threads(threads));
        assert_parity(
            &parallel,
            &sequential,
            &format!("clustered k=3, T={threads}"),
        );
    }
    // The per-tuple baseline honours the same contract.
    let base = base.with_multiway_probe(MultiwayProbe::PerTuple);
    let sequential = run_multiway(&sets, &base.with_worker_threads(1));
    let parallel = run_multiway(&sets, &base.with_worker_threads(4));
    assert_parity(&parallel, &sequential, "per-tuple k=3, T=4");
}

#[test]
fn thread_parity_holds_under_cache_eviction_pressure() {
    // A tiny reuse buffer maximises policy churn across all k caches: hits,
    // misses and evictions must still be decided identically to leaf order.
    let base = test_config().with_cell_cache_capacity(4);
    let sets = vec![clustered(200, 15_013), clustered(200, 15_014)];
    let sequential = run_multiway(&sets, &base.with_worker_threads(1));
    let parallel = run_multiway(&sets, &base.with_worker_threads(4));
    assert_parity(&parallel, &sequential, "squeezed caches, T=4");
    assert!(
        sequential.counters.cell_cache_evictions.iter().sum::<u64>() > 0,
        "capacity 4 must evict on this workload"
    );
    // Eviction pressure never changes the result set.
    let roomy = run_multiway(&sets, &test_config().with_worker_threads(1));
    assert_eq!(sequential.sorted_ids(), roomy.sorted_ids());
}

#[test]
fn storage_backends_are_observably_identical() {
    let base = test_config();
    let sets = vec![
        clustered(200, 15_015),
        clustered(200, 15_016),
        clustered(200, 15_017),
    ];
    let heap = run_multiway(&sets, &base.with_storage_backend(StorageBackend::Heap));
    let file = run_multiway(&sets, &base.with_storage_backend(StorageBackend::File));
    assert_parity(&file, &heap, "file vs heap backend");
    // And the same holds with the parallel path on top.
    let heap4 = run_multiway(
        &sets,
        &base
            .with_storage_backend(StorageBackend::Heap)
            .with_worker_threads(4),
    );
    let file4 = run_multiway(
        &sets,
        &base
            .with_storage_backend(StorageBackend::File)
            .with_worker_threads(4),
    );
    assert_parity(&file4, &heap4, "file vs heap backend, T=4");
    assert_parity(&heap4, &heap, "heap T=4 vs T=1");
}

#[test]
fn driver_choices_agree_with_the_oracle_and_each_other() {
    // Asymmetric sizes: the cost model genuinely has a choice to make.
    let config = test_config();
    let sets = vec![
        clustered(80, 15_030),
        clustered(45, 15_031),
        clustered(25, 15_032),
    ];
    let oracle = brute_force_multiway_cij(&sets, &config.domain);
    let cost_based = run_multiway(&sets, &config);
    assert_eq!(cost_based.sorted_ids(), oracle);
    for d in 0..sets.len() {
        let fixed = run_multiway(
            &sets,
            &config.with_multiway_driver(MultiwayDriver::Fixed(d)),
        );
        assert_eq!(fixed.driver, d);
        // Tuples may be *ordered* differently across drivers (the leaf
        // order of a different tree drives emission) — the sets must match
        // the brute oracle exactly.
        assert_eq!(
            fixed.sorted_ids(),
            oracle,
            "driver {d} diverged from the oracle"
        );
    }
}

#[test]
fn thread_and_backend_parity_hold_at_a_fixed_nonzero_driver() {
    // The exact-parity contract is per plan: pin a non-default driver and
    // the full observable-equality guarantee must hold across thread counts
    // and storage backends, exactly like the historical driver-0 plan.
    let base = test_config().with_multiway_driver(MultiwayDriver::Fixed(1));
    let sets = vec![
        clustered(180, 15_033),
        clustered(120, 15_034),
        clustered(90, 15_035),
    ];
    let sequential = run_multiway(&sets, &base.with_worker_threads(1));
    assert_eq!(sequential.driver, 1);
    let parallel = run_multiway(&sets, &base.with_worker_threads(4));
    assert_parity(&parallel, &sequential, "fixed driver 1, T=4 vs T=1");
    let file = run_multiway(&sets, &base.with_storage_backend(StorageBackend::File));
    assert_parity(&file, &sequential, "fixed driver 1, file vs heap");
}

#[test]
fn cost_driven_plan_parity_holds_across_threads_and_backends() {
    // The cost model reads only tree metadata, which is identical across
    // thread counts and backends — so the chosen plan, and with it every
    // observable, stays exact.
    let base = test_config();
    let sets = vec![
        clustered(200, 15_036),
        clustered(100, 15_037),
        clustered(60, 15_038),
    ];
    let sequential = run_multiway(&sets, &base.with_worker_threads(1));
    let parallel = run_multiway(&sets, &base.with_worker_threads(4));
    assert_eq!(parallel.driver, sequential.driver);
    assert_parity(&parallel, &sequential, "cost-driven plan, T=4 vs T=1");
    let file = run_multiway(&sets, &base.with_storage_backend(StorageBackend::File));
    assert_eq!(file.driver, sequential.driver);
    assert_parity(&file, &sequential, "cost-driven plan, file vs heap");
}

#[test]
fn raw_tuples_are_unique_without_deduplication() {
    let config = test_config();
    let sets = vec![clustered(150, 15_018), clustered(150, 15_019)];
    let outcome = run_multiway(&sets, &config);
    let mut ids: Vec<Vec<u64>> = outcome.tuples.iter().map(|t| t.ids.clone()).collect();
    let raw_len = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(
        ids.len(),
        raw_len,
        "the stream must never emit the same id tuple twice"
    );
}

#[test]
fn stream_is_lazy_and_watermarks_are_final() {
    let config = test_config();
    let sets = vec![
        uniform_points(800, &Rect::DOMAIN, 15_020),
        uniform_points(800, &Rect::DOMAIN, 15_021),
    ];
    let engine = QueryEngine::new(config);

    let blocking = engine.multiway(&sets);
    let total = blocking.page_accesses;

    let mut w = engine.multiway_workload(&sets);
    let stats = w.stats.clone();
    let mut stream = engine.multiway_stream(&mut w);
    let first = stream
        .next()
        .expect("non-empty multiway join yields tuples");
    assert!(!first.ids.is_empty());
    let at_first = stats.snapshot().page_accesses();
    assert!(
        at_first * 4 < total,
        "first tuple after {at_first} accesses vs {total} total — not lazy"
    );

    // Watermarks recorded so far are a prefix of the blocking run's, and
    // everything at or below the last watermark is already final.
    let early = stream.watermarks_so_far();
    assert!(!early.is_empty());
    let rest: Vec<MultiwayTuple> = stream.by_ref().collect();
    assert_eq!(1 + rest.len(), blocking.tuples.len());
    let full = stream.watermarks_so_far();
    assert_eq!(
        &full[..early.len()],
        &early[..],
        "watermarks are append-only"
    );
    assert_eq!(full, blocking.watermarks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random clustered/uniform workloads and random k, probe mode,
    /// driver choice, thread count and cache pressure: the engine agrees
    /// with the brute-force oracle and the parallel run agrees with the
    /// sequential one on every observable.
    #[test]
    fn multiway_parity_and_oracle_hold_for_random_workloads(
        seed in 0u64..1_000,
        k in 2usize..4,
        capacity in 4usize..64,
        threads in 2usize..5,
        probe_pick in 0usize..2,
        driver_pick in 0usize..4,
    ) {
        let sets: Vec<Vec<Point>> = (0..k)
            .map(|i| {
                let s = 16_000 + seed * 10 + i as u64;
                if i % 2 == 0 {
                    uniform_points(30, &Rect::DOMAIN, s)
                } else {
                    clustered(30, s)
                }
            })
            .collect();
        let probe = if probe_pick == 1 { MultiwayProbe::PerTuple } else { MultiwayProbe::Batched };
        let driver = if driver_pick >= k {
            MultiwayDriver::CostBased
        } else {
            MultiwayDriver::Fixed(driver_pick)
        };
        let config = test_config()
            .with_cell_cache_capacity(capacity)
            .with_multiway_probe(probe)
            .with_multiway_driver(driver);
        let sequential = run_multiway(&sets, &config.with_worker_threads(1));
        prop_assert_eq!(
            sequential.sorted_ids(),
            brute_force_multiway_cij(&sets, &config.domain)
        );
        let parallel = run_multiway(&sets, &config.with_worker_threads(threads));
        let seq_ids: Vec<&Vec<u64>> = sequential.tuples.iter().map(|t| &t.ids).collect();
        let par_ids: Vec<&Vec<u64>> = parallel.tuples.iter().map(|t| &t.ids).collect();
        prop_assert_eq!(par_ids, seq_ids);
        prop_assert_eq!(&parallel.counters, &sequential.counters);
        prop_assert_eq!(parallel.page_accesses, sequential.page_accesses);
    }
}
