//! Integration tests for the pluggable storage backends: NM-CIJ over the
//! real-file and memory-mapped `PageBackend`s must be observably
//! indistinguishable from the heap-backed run (same pairs in the same
//! order, same NM counters, same page-access totals — across worker-thread
//! counts and execution modes), pinned buffer pages must never be evicted
//! under cache pressure, and the `PagePayload` node codec must round-trip
//! losslessly while rejecting frames that exceed the page size.

use cij::pagestore::{Admission, BackendIo, LruBuffer, PagePayload};
use cij::prelude::*;
use cij::rtree::{CellObject, Node, PointObject, RTree, RTreeConfig, NODE_HEADER_BYTES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small pages so even modest datasets produce multi-level trees.
fn test_config() -> CijConfig {
    CijConfig::default().with_rtree(RTreeConfig {
        page_size: 512,
        min_fill: 0.4,
        max_entries: 64,
    })
}

fn clustered(n: usize, seed: u64) -> Vec<Point> {
    clustered_points(
        &ClusterSpec {
            n,
            clusters: 5,
            sigma_fraction: 0.03,
            background_fraction: 0.15,
            size_skew: 0.8,
        },
        &Rect::DOMAIN,
        seed,
    )
}

fn run_nm(p: &[Point], q: &[Point], config: &CijConfig) -> CijOutcome {
    QueryEngine::new(*config).join(p, q, Algorithm::NmCij)
}

/// The acceptance contract, as a full matrix: for uniform and clustered
/// workloads, NM-CIJ over every backend {heap, file, mmap} × threads
/// {1, 4} × execution mode {metered, fast} produces identical pairs (set
/// *and* order) and NM counters as the metered single-threaded heap
/// baseline; metered cells additionally reproduce its page-access totals
/// and progress samples exactly.
#[test]
fn backend_matrix_matches_the_metered_heap_baseline_exactly() {
    let workloads = [
        (
            "uniform",
            uniform_points(600, &Rect::DOMAIN, 9401),
            uniform_points(600, &Rect::DOMAIN, 9402),
        ),
        ("clustered", clustered(500, 9403), clustered(550, 9404)),
    ];
    for (name, p, q) in &workloads {
        let baseline = run_nm(p, q, &test_config().with_worker_threads(1));
        assert!(!baseline.pairs.is_empty());
        for backend in StorageBackend::ALL {
            for threads in [1usize, 4] {
                for mode in [ExecMode::Metered, ExecMode::Fast] {
                    let config = test_config()
                        .with_storage_backend(backend)
                        .with_worker_threads(threads)
                        .with_exec_mode(mode);
                    let run = run_nm(p, q, &config);
                    let label = format!("{name}, {backend}, T={threads}, {mode:?}");
                    assert_eq!(
                        run.pairs, baseline.pairs,
                        "{label}: pair sequence (set or order) diverged"
                    );
                    assert_eq!(run.nm, baseline.nm, "{label}: NM counters diverged");
                    if mode == ExecMode::Metered {
                        assert_eq!(
                            run.page_accesses(),
                            baseline.page_accesses(),
                            "{label}: page-access totals diverged"
                        );
                        assert_eq!(
                            run.progress, baseline.progress,
                            "{label}: progress samples diverged"
                        );
                    }
                }
            }
        }
    }
}

/// All three algorithms (including the Voronoi-tree-materialising FM/PM)
/// agree with the brute-force oracle when every tree lives on the file
/// backend.
#[test]
fn every_algorithm_is_correct_over_the_file_backend() {
    let config = test_config().with_storage_backend(StorageBackend::File);
    let engine = QueryEngine::new(config);
    let p = uniform_points(150, &Rect::DOMAIN, 9405);
    let q = clustered(150, 9406);
    let oracle = brute_force_cij(&p, &q, &config.domain);
    for alg in Algorithm::ALL {
        let outcome = engine.join(&p, &q, alg);
        assert_eq!(outcome.sorted_pairs(), oracle, "{} diverged", alg.name());
    }
}

/// Counted physical reads translate 1:1 into frame-sized file transfers.
#[test]
fn file_bytes_read_match_counted_physical_reads() {
    let config = test_config().with_storage_backend(StorageBackend::File);
    let engine = QueryEngine::new(config);
    let p = uniform_points(400, &Rect::DOMAIN, 9407);
    let q = uniform_points(400, &Rect::DOMAIN, 9408);
    let mut w = engine.build_workload(&p, &q);
    let io_before: BackendIo = w.backend_io();
    let outcome = engine.run(&mut w, Algorithm::NmCij);
    assert!(!outcome.pairs.is_empty());
    let page_size = config.rtree.page_size as u64;
    let snap = w.stats.snapshot();
    let io = w.backend_io().since(&io_before);
    assert_eq!(
        io.bytes_read,
        snap.physical_reads * page_size,
        "every counted miss must move exactly one page-sized frame"
    );
}

/// A whole tree built page-by-page (insertion path, splits included) on the
/// file backend answers queries identically to its heap twin, with
/// identical I/O counters.
#[test]
fn insert_built_trees_agree_across_backends() {
    let build = |storage: StorageBackend| {
        let mut tree: RTree<PointObject> =
            RTree::with_stats_on(test_config().rtree, cij::pagestore::IoStats::new(), storage);
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..500u64 {
            tree.insert(PointObject::new(
                i,
                Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0)),
            ));
        }
        tree.set_buffer_pages(8);
        tree.drop_buffer();
        tree.stats().reset();
        tree
    };
    let mut heap = build(StorageBackend::Heap);
    let mut file = build(StorageBackend::File);
    heap.check_invariants().unwrap();
    file.check_invariants().unwrap();
    for query in [
        Rect::from_coords(0.0, 0.0, 2_500.0, 2_500.0),
        Rect::from_coords(4_000.0, 1_000.0, 9_000.0, 8_000.0),
    ] {
        let mut a: Vec<u64> = heap.range_query(&query).iter().map(|o| o.id.0).collect();
        let mut b: Vec<u64> = file.range_query(&query).iter().map(|o| o.id.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
    assert_eq!(heap.stats().snapshot(), file.stats().snapshot());
    assert_eq!(heap.backend_io(), file.backend_io());
}

fn arbitrary_point_node(seed: u64, entries: usize, inner: bool) -> Node<PointObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    if inner {
        let mut node: Node<PointObject> = Node::new_inner(1 + (seed % 5) as u32);
        for _ in 0..entries {
            let x = rng.gen_range(-1e6..1e6);
            let y = rng.gen_range(-1e6..1e6);
            node.children.push(cij::rtree::ChildEntry {
                mbr: Rect::from_coords(
                    x,
                    y,
                    x + rng.gen_range(0.0..1e3),
                    y + rng.gen_range(0.0..1e3),
                ),
                page: cij::pagestore::PageId(rng.gen_range(0..u32::MAX)),
            });
        }
        node
    } else {
        let mut node = Node::new_leaf();
        for _ in 0..entries {
            node.objects.push(PointObject::new(
                rng.gen_range(0..u64::MAX),
                Point::new(rng.gen_range(-1e9..1e9), rng.gen_range(-1e9..1e9)),
            ));
        }
        node
    }
}

fn arbitrary_cell_node(seed: u64, entries: usize) -> Node<CellObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut node = Node::new_leaf();
    for i in 0..entries as u64 {
        let cx = rng.gen_range(100.0..9_900.0);
        let cy = rng.gen_range(100.0..9_900.0);
        let site = Point::new(cx, cy);
        let mut cell = ConvexPolygon::from_rect(&Rect::from_coords(
            cx - 60.0,
            cy - 60.0,
            cx + 60.0,
            cy + 60.0,
        ));
        for _ in 0..rng.gen_range(0..8) {
            let other = Point::new(
                cx + rng.gen_range(-90.0..90.0),
                cy + rng.gen_range(-90.0..90.0),
            );
            if other.dist(&site) > 1.0 {
                cell = cell.clip_bisector(&site, &other);
            }
        }
        node.objects.push(CellObject::new(i, site, cell));
    }
    node
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `PagePayload` encode/decode is lossless for arbitrary R-tree nodes:
    /// point leaves, inner nodes and variable-size Voronoi-cell leaves all
    /// round-trip observably unchanged, and the size estimate is exact.
    #[test]
    fn node_codec_roundtrip_is_lossless(
        seed in 0u64..10_000,
        entries in 0usize..40,
        inner in 0u8..2,
    ) {
        let point_node = arbitrary_point_node(seed, entries, inner == 1);
        let bytes = point_node.encode();
        prop_assert_eq!(bytes.len(), point_node.encoded_len());
        prop_assert_eq!(&Node::<PointObject>::decode(&bytes), &point_node);

        let cell_node = arbitrary_cell_node(seed, entries.min(12));
        let bytes = cell_node.encode();
        prop_assert_eq!(bytes.len(), cell_node.encoded_len());
        prop_assert_eq!(&Node::<CellObject>::decode(&bytes), &cell_node);
    }

    /// Overflow detection: a node whose encoding exceeds the page size is
    /// rejected by the frame check; anything the R-tree's fanout budget
    /// admits fits with its header.
    #[test]
    fn frames_exceeding_page_size_are_rejected(
        seed in 0u64..10_000,
        entries in 0usize..60,
    ) {
        let node = arbitrary_point_node(seed, entries, false);
        let page_size = 512usize;
        let fits_budget =
            node.payload_bytes() <= page_size - NODE_HEADER_BYTES;
        prop_assert_eq!(
            node.check_frame(page_size).is_ok(),
            fits_budget,
            "frame check must agree with the header-aware fanout budget"
        );
        if let Err(overflow) = node.check_frame(page_size) {
            prop_assert_eq!(overflow.needed, node.encoded_len());
            prop_assert_eq!(overflow.frame, page_size);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pinned pages are never evicted, no matter the cache pressure: over
    /// arbitrary interleavings of touches (reads/writes causing evictions),
    /// pins and unpins against a small `LruBuffer`, no eviction victim is
    /// ever pinned, and every page that was a buffer member when pinned is
    /// still a member after arbitrary pressure.
    #[test]
    fn pinned_pages_are_never_evicted_under_pressure(
        capacity in 1usize..6,
        ops in proptest::collection::vec((0u64..20, 0u8..4), 1..300),
    ) {
        let mut buf = LruBuffer::new(capacity);
        let mut pins: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut pinned_members: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (key, op) in ops {
            match op {
                // Touch (read or write): the only operation that evicts.
                0 | 1 => {
                    if let Admission::Miss { evicted: Some((victim, _)) } =
                        buf.touch(key, op == 1)
                    {
                        prop_assert!(
                            !pins.contains_key(&victim),
                            "evicted page {victim} holds {} pins",
                            pins.get(&victim).copied().unwrap_or(0)
                        );
                        prop_assert!(victim != key || !pins.contains_key(&key));
                    }
                    if pins.contains_key(&key) {
                        pinned_members.insert(key);
                    }
                }
                2 => {
                    buf.pin(key);
                    *pins.entry(key).or_insert(0) += 1;
                    if buf.contains(key) {
                        pinned_members.insert(key);
                    }
                }
                _ => {
                    if let Some(count) = pins.get_mut(&key) {
                        buf.unpin(key);
                        *count -= 1;
                        if *count == 0 {
                            pins.remove(&key);
                            pinned_members.remove(&key);
                        }
                    }
                }
            }
            for &member in &pinned_members {
                prop_assert!(
                    buf.contains(member),
                    "pinned member {member} vanished from the buffer"
                );
            }
        }
        prop_assert_eq!(buf.pinned_pages(), pins.len());
    }
}

/// The store enforces the frame check: a single object too large for any
/// page (which node splitting cannot fix) is rejected with a panic instead
/// of being silently stored in an unserializable node.
#[test]
#[should_panic(expected = "page frame overflow")]
fn oversized_node_is_rejected_by_the_store() {
    let mut tree: RTree<CellObject> = RTree::with_stats_on(
        RTreeConfig {
            page_size: 128,
            min_fill: 0.4,
            max_entries: 64,
        },
        cij::pagestore::IoStats::new(),
        StorageBackend::File,
    );
    // A 20-vertex cell needs 28 + 20 × 16 = 348 bytes — more than a page.
    let vertices = (0..20)
        .map(|i| {
            let angle = i as f64 * std::f64::consts::TAU / 20.0;
            Point::new(5_000.0 + 100.0 * angle.cos(), 5_000.0 + 100.0 * angle.sin())
        })
        .collect();
    let cell = ConvexPolygon::new(vertices);
    tree.insert(CellObject::new(0, Point::new(5_000.0, 5_000.0), cell));
}
