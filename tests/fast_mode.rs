//! Fast-mode equivalence tests: the lock-light serving executor
//! (`ExecMode::Fast`) must produce results byte-identical to the metered
//! oracle across storage backends, worker-pool widths and concurrent query
//! counts, and concurrent served queries must be isolated from each other
//! by their private cache quotas.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;
use std::sync::Arc;

const BACKENDS: [StorageBackend; 3] = StorageBackend::ALL;
const THREADS: [usize; 2] = [1, 4];
const QUERY_COUNTS: [usize; 3] = [1, 4, 16];

fn config_for(backend: StorageBackend, threads: usize, mode: ExecMode) -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_storage_backend(backend)
        .with_worker_threads(threads)
        .with_exec_mode(mode)
}

fn pointset(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..10_000.0f64, 0.0..10_000.0f64), 2..max_len)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

/// Emission-ordered pairs of a solo NM-CIJ run under the given mode.
fn solo_pairs(p: &[Point], q: &[Point], config: &CijConfig) -> Vec<(u64, u64)> {
    let mut w = Workload::build(p, q, config);
    nm_cij(&mut w, config).pairs
}

/// Emission-ordered tuple ids of a solo multiway run under the given mode.
fn solo_tuple_ids(sets: &[Vec<Point>], config: &CijConfig) -> Vec<Vec<u64>> {
    multiway_cij(sets, config)
        .tuples
        .into_iter()
        .map(|t| t.ids)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fast ≡ Metered for binary pairs and multiway tuples over the full
    /// backend × worker-thread matrix. Emission order is compared, not just
    /// the sorted sets — the fast path must preserve the deterministic
    /// leaf-major order of the metered protocol.
    #[test]
    fn fast_matches_metered_pairs_and_tuples(
        p in pointset(30),
        q in pointset(30),
        r in pointset(20),
    ) {
        for backend in BACKENDS {
            for threads in THREADS {
                let metered = config_for(backend, threads, ExecMode::Metered);
                let fast = config_for(backend, threads, ExecMode::Fast);
                prop_assert_eq!(
                    solo_pairs(&p, &q, &fast),
                    solo_pairs(&p, &q, &metered),
                    "pairs diverge ({backend:?}, {threads} threads)"
                );
                let sets = [p.clone(), q.clone(), r.clone()];
                prop_assert_eq!(
                    solo_tuple_ids(&sets, &fast),
                    solo_tuple_ids(&sets, &metered),
                    "tuples diverge ({backend:?}, {threads} threads)"
                );
            }
        }
    }

    /// N ∈ {1, 4, 16} concurrent served queries against one shared snapshot
    /// each reproduce the metered oracle exactly (pairs, emission order and
    /// completion row counts).
    #[test]
    fn concurrent_served_queries_match_the_metered_oracle(
        p in pointset(28),
        q in pointset(28),
    ) {
        for backend in BACKENDS {
            for threads in THREADS {
                let metered = config_for(backend, threads, ExecMode::Metered);
                let oracle = solo_pairs(&p, &q, &metered);
                let engine = QueryEngine::new(config_for(backend, threads, ExecMode::Fast));
                let sets = [p.clone(), q.clone()];
                for n in QUERY_COUNTS {
                    let service = engine.serve(
                        &sets,
                        ServiceConfig {
                            queue_depth: n.max(4),
                            workers: 4,
                            ..ServiceConfig::default()
                        },
                    );
                    let handles: Vec<ResponseHandle> = (0..n)
                        .map(|_| service.submit(Request::Join { p: 0, q: 1 }).unwrap())
                        .collect();
                    for handle in &handles {
                        prop_assert_eq!(&handle.collect_pairs(), &oracle);
                        let done = handle.completion();
                        prop_assert!(!done.failed);
                        prop_assert_eq!(done.rows, oracle.len() as u64);
                        prop_assert!(done.page_accesses > 0);
                    }
                    service.shutdown();
                }
            }
        }
    }
}

/// Quota isolation: queries under heavy cache-budget pressure (16 queries
/// competing for a budget that fits only two quotas) return exactly what
/// they return when run alone with the whole budget to themselves. Private
/// per-query caches make cross-query eviction structurally impossible, so
/// contention can delay a query but never change its answer — and the
/// aggregate residency envelope is never exceeded.
#[test]
fn quota_pressure_never_changes_results() {
    let engine = QueryEngine::new(config_for(StorageBackend::Heap, 2, ExecMode::Fast));
    let p = uniform_points(220, &Rect::DOMAIN, 9101);
    let q = uniform_points(200, &Rect::DOMAIN, 9102);
    let r = uniform_points(60, &Rect::DOMAIN, 9103);
    let sets = [p, q, r];

    // Solo references: one query at a time, generous budget.
    let solo = engine.serve(&sets, ServiceConfig::default());
    let solo_pairs = solo
        .submit(Request::Join { p: 0, q: 1 })
        .unwrap()
        .collect_pairs();
    let solo_tuples: Vec<Vec<u64>> = solo
        .submit(Request::Multiway {
            sets: vec![0, 1, 2],
        })
        .unwrap()
        .collect_tuples()
        .into_iter()
        .map(|t| t.ids)
        .collect();
    solo.shutdown();

    // Contended: 16 queries, budget fits two quotas at a time.
    let contended = engine.serve(
        &sets,
        ServiceConfig {
            queue_depth: 32,
            workers: 4,
            cache_budget_cells: 128,
            query_cache_quota: 64,
        },
    );
    let handles: Vec<(bool, ResponseHandle)> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                (
                    true,
                    contended.submit(Request::Join { p: 0, q: 1 }).unwrap(),
                )
            } else {
                (
                    false,
                    contended
                        .submit(Request::Multiway {
                            sets: vec![0, 1, 2],
                        })
                        .unwrap(),
                )
            }
        })
        .collect();
    for (is_join, handle) in &handles {
        if *is_join {
            assert_eq!(handle.collect_pairs(), solo_pairs);
        } else {
            let ids: Vec<Vec<u64>> = handle.collect_tuples().into_iter().map(|t| t.ids).collect();
            assert_eq!(ids, solo_tuples);
        }
        assert!(!handle.completion().failed);
    }
    let budget = contended.budget();
    assert!(
        budget.high_water() <= budget.total(),
        "aggregate residency {} exceeded the global budget {}",
        budget.high_water(),
        budget.total()
    );
    assert!(budget.high_water() > 0, "budget was never drawn from");
    contended.shutdown();
}

/// The snapshot really is shared: many threads can run fast joins over one
/// `Arc<EngineSnapshot>` without the service front, and a snapshot outlives
/// the engine that built it.
#[test]
fn raw_snapshot_sharing_without_the_service() {
    let p = uniform_points(150, &Rect::DOMAIN, 9201);
    let q = uniform_points(150, &Rect::DOMAIN, 9202);
    let metered = QueryEngine::new(config_for(StorageBackend::Heap, 1, ExecMode::Metered));
    let oracle = solo_pairs(&p, &q, metered.config());
    let snapshot = {
        let engine = QueryEngine::new(config_for(StorageBackend::Heap, 1, ExecMode::Fast));
        Arc::new(engine.snapshot(&[p, q]))
    };
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let snapshot = Arc::clone(&snapshot);
            let oracle = &oracle;
            scope.spawn(move || {
                let service = CijService::start(snapshot, ServiceConfig::default());
                let got = service
                    .submit(Request::Join { p: 0, q: 1 })
                    .unwrap()
                    .collect_pairs();
                assert_eq!(&got, oracle);
                service.shutdown();
            });
        }
    });
}
