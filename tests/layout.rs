//! Integration tests for the leaf layouts: the SoA arena/scratch kernel
//! path ([`LeafLayout::Soa`], the engine default) must be observably
//! identical to the AoS owned-node baseline ([`LeafLayout::Aos`]) — same
//! pairs and tuples (set *and* order), same counters, same page accesses —
//! across random workloads, storage backends and worker-thread counts. The
//! layout is a memory strategy, never a result strategy.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;

fn tree_config() -> RTreeConfig {
    RTreeConfig {
        page_size: 512,
        min_fill: 0.4,
        max_entries: 64,
    }
}

fn engine_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(tree_config())
        .with_env_overrides()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NM-CIJ under the SoA layout is byte-identical to the AoS layout for
    /// random workloads, on both storage backends, single-threaded and
    /// parallel.
    #[test]
    fn nm_layouts_agree_across_backends_and_threads(
        seed in 0u64..10_000,
        n_p in 60usize..300,
        n_q in 50usize..200,
        backend_pick in 0usize..2,
        threads_pick in 0usize..2,
        clustered_pick in 0usize..2,
    ) {
        let backend = [StorageBackend::Heap, StorageBackend::File][backend_pick];
        let threads = [1usize, 4][threads_pick];
        let p = if clustered_pick == 1 {
            clustered_points(
                &ClusterSpec {
                    n: n_p,
                    clusters: 5,
                    sigma_fraction: 0.05,
                    background_fraction: 0.1,
                    size_skew: 0.6,
                },
                &Rect::DOMAIN,
                23_100 + seed,
            )
        } else {
            uniform_points(n_p, &Rect::DOMAIN, 23_100 + seed)
        };
        let q = uniform_points(n_q, &Rect::DOMAIN, 23_200 + seed);
        let run = |layout: LeafLayout| {
            let engine = QueryEngine::new(
                engine_config()
                    .with_leaf_layout(layout)
                    .with_storage_backend(backend)
                    .with_worker_threads(threads),
            );
            engine.join(&p, &q, Algorithm::NmCij)
        };
        let soa = run(LeafLayout::Soa);
        let aos = run(LeafLayout::Aos);
        prop_assert_eq!(&soa.pairs, &aos.pairs);
        prop_assert_eq!(&soa.nm, &aos.nm);
        prop_assert_eq!(soa.page_accesses(), aos.page_accesses());
        prop_assert_eq!(&soa.progress, &aos.progress);
        prop_assert_eq!(&soa.watermarks, &aos.watermarks);
    }

    /// The multiway join is likewise layout-invariant: identical tuple
    /// streams, counters and page accesses at any thread count.
    #[test]
    fn multiway_layouts_agree(
        seed in 0u64..10_000,
        k in 2usize..4,
        n in 50usize..160,
        threads_pick in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_pick];
        let sets: Vec<Vec<Point>> = (0..k)
            .map(|i| uniform_points(n / (i + 1), &Rect::DOMAIN, 23_300 + seed + i as u64))
            .collect();
        let run = |layout: LeafLayout| {
            QueryEngine::new(
                engine_config()
                    .with_leaf_layout(layout)
                    .with_worker_threads(threads),
            )
            .multiway(&sets)
        };
        let soa = run(LeafLayout::Soa);
        let aos = run(LeafLayout::Aos);
        let soa_ids: Vec<&Vec<u64>> = soa.tuples.iter().map(|t| &t.ids).collect();
        let aos_ids: Vec<&Vec<u64>> = aos.tuples.iter().map(|t| &t.ids).collect();
        prop_assert_eq!(soa_ids, aos_ids);
        prop_assert_eq!(&soa.counters, &aos.counters);
        prop_assert_eq!(soa.driver, aos.driver);
        prop_assert_eq!(soa.page_accesses, aos.page_accesses);
    }
}

#[test]
fn streaming_nm_is_layout_invariant_pair_by_pair() {
    // The lazy stream must produce the same pairs in the same order under
    // either layout — not just the same drained outcome.
    let p = uniform_points(500, &Rect::DOMAIN, 23_401);
    let q = uniform_points(400, &Rect::DOMAIN, 23_402);
    let collect = |layout: LeafLayout| {
        let engine = QueryEngine::new(engine_config().with_leaf_layout(layout));
        let mut w = engine.build_workload(&p, &q);
        let stream = engine.stream(&mut w, Algorithm::NmCij);
        stream.collect::<Vec<_>>()
    };
    assert_eq!(collect(LeafLayout::Soa), collect(LeafLayout::Aos));
}

#[test]
fn layout_env_override_is_honoured() {
    // `with_env_overrides` reads CIJ_LEAF_LAYOUT; the test suite cannot set
    // process-global env vars safely, so check the builder + parser pair
    // the override is built from instead.
    assert_eq!(CijConfig::default().leaf_layout, LeafLayout::Soa);
    assert_eq!(
        CijConfig::default()
            .with_leaf_layout(LeafLayout::Aos)
            .leaf_layout,
        LeafLayout::Aos
    );
    assert_eq!("soa".parse::<LeafLayout>().unwrap(), LeafLayout::Soa);
    assert_eq!("aos".parse::<LeafLayout>().unwrap(), LeafLayout::Aos);
    assert!("rowwise".parse::<LeafLayout>().is_err());
}
