//! Integration tests for the streaming execution core: the lazy NM-CIJ
//! [`PairStream`], the bounded [`CellCache`], and the paper's non-blocking
//! property (guarded against regressions to blocking behaviour).

use cij::prelude::*;
use cij::rtree::RTreeConfig;

/// Small pages so even modest datasets produce multi-level trees; honours
/// the `CIJ_WORKER_THREADS` override CI uses to run this suite a second
/// time over the parallel NM-CIJ path.
fn test_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_env_overrides()
}

fn clustered(n: usize, seed: u64) -> Vec<Point> {
    clustered_points(
        &ClusterSpec {
            n,
            clusters: 5,
            sigma_fraction: 0.03,
            background_fraction: 0.15,
            size_skew: 0.8,
        },
        &Rect::DOMAIN,
        seed,
    )
}

/// Collects a stream into the canonical sorted/deduped pair list.
fn collect_sorted(mut stream: PairStream<'_>) -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> = stream.by_ref().collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[test]
fn streaming_nm_matches_brute_force_on_uniform_data() {
    let engine = QueryEngine::new(test_config());
    let p = uniform_points(130, &Rect::DOMAIN, 9001);
    let q = uniform_points(110, &Rect::DOMAIN, 9002);
    let oracle = brute_force_cij(&p, &q, &engine.config().domain);
    let mut w = engine.build_workload(&p, &q);
    let streamed = collect_sorted(engine.stream(&mut w, Algorithm::NmCij));
    assert_eq!(streamed, oracle);
}

#[test]
fn streaming_nm_matches_brute_force_on_clustered_data() {
    let engine = QueryEngine::new(test_config());
    let p = clustered(140, 9003);
    let q = clustered(120, 9004);
    let oracle = brute_force_cij(&p, &q, &engine.config().domain);
    let mut w = engine.build_workload(&p, &q);
    let streamed = collect_sorted(engine.stream(&mut w, Algorithm::NmCij));
    assert_eq!(streamed, oracle);
}

#[test]
fn cell_cache_eviction_never_changes_join_results() {
    // Sweep the reuse-buffer capacity from "evicting constantly" to "roomy":
    // the pair set must be identical throughout, because an evicted cell is
    // recomputed on demand, never lost.
    let p = clustered(250, 9005);
    let q = uniform_points(250, &Rect::DOMAIN, 9006);
    let reference = {
        let engine = QueryEngine::new(test_config());
        engine.join(&p, &q, Algorithm::NmCij)
    };
    for capacity in [1usize, 2, 8, 64] {
        let engine = QueryEngine::new(test_config().with_cell_cache_capacity(capacity));
        let outcome = engine.join(&p, &q, Algorithm::NmCij);
        assert_eq!(
            outcome.sorted_pairs(),
            reference.sorted_pairs(),
            "capacity {capacity} changed the result"
        );
        if capacity <= 8 {
            assert!(
                outcome.nm.cell_cache_evictions > 0,
                "capacity {capacity} should be under eviction pressure on this workload"
            );
        }
    }
}

#[test]
fn bounded_cache_stays_within_capacity_while_still_reusing() {
    let engine = QueryEngine::new(test_config().with_cell_cache_capacity(32));
    let p = uniform_points(400, &Rect::DOMAIN, 9007);
    let q = uniform_points(400, &Rect::DOMAIN, 9008);
    let outcome = engine.join(&p, &q, Algorithm::NmCij);
    // Reuse still happens under a tight bound...
    assert!(
        outcome.nm.p_cells_reused > 0,
        "no reuse despite neighbouring leaves"
    );
    // ...and the workload-wide stats expose the same cache events.
    let mut w = engine.build_workload(&p, &q);
    let stats = w.stats.clone();
    let _ = engine.run(&mut w, Algorithm::NmCij);
    let snap = stats.snapshot();
    assert_eq!(snap.cell_cache_hits, outcome.nm.p_cells_reused);
    assert!(snap.cell_cache_misses >= outcome.nm.p_cells_computed);
}

/// The non-blocking guard: pulling the first pair from the NM-CIJ stream
/// must cost at most `fraction` of the page accesses of the complete join.
///
/// This is the regression tripwire for the streaming refactor: a blocking
/// implementation (compute everything, then iterate) pays ~100 % of the I/O
/// before the first pair and fails this immediately.
fn assert_first_pair_within_fraction(n: usize, seed: u64, fraction: f64, threads: usize) {
    let engine = QueryEngine::new(test_config().with_worker_threads(threads));
    let p = uniform_points(n, &Rect::DOMAIN, seed);
    let q = uniform_points(n, &Rect::DOMAIN, seed + 1);

    let total = engine.join(&p, &q, Algorithm::NmCij).page_accesses();

    let mut w = engine.build_workload(&p, &q);
    let stats = w.stats.clone();
    let mut stream = engine.stream(&mut w, Algorithm::NmCij);
    let first = stream.next();
    let at_first = stats.snapshot().page_accesses();
    assert!(
        first.is_some(),
        "join of non-empty pointsets must yield pairs"
    );
    assert!(
        (at_first as f64) <= fraction * total as f64,
        "first pair cost {at_first} of {total} total accesses with {threads} worker \
         thread(s) — exceeds the non-blocking budget of {fraction} (did the stream \
         regress to blocking?)"
    );
    // The stream completes with the full result.
    let produced = 1 + stream.count();
    assert!(
        produced as u64 >= n as u64,
        "every point joins at least once"
    );
}

#[test]
fn nm_first_pair_is_yielded_within_a_small_io_fraction() {
    // The fraction is configurable per call site; 25 % is a loose ceiling —
    // measured behaviour is far below it, while a blocking implementation
    // sits at ~100 %.
    assert_first_pair_within_fraction(800, 9101, 0.25, 1);
    // Tighter budget at a larger size: laziness must not degrade with scale.
    assert_first_pair_within_fraction(1_600, 9103, 0.15, 1);
}

#[test]
fn nm_first_pair_stays_cheap_with_parallel_workers() {
    // The parallel path processes leaves in bounded chunks whose width
    // ramps up from a single leaf, so the non-blocking budget must hold
    // for it too — parallelism must not regress to blocking.
    assert_first_pair_within_fraction(800, 9101, 0.25, 4);
    assert_first_pair_within_fraction(1_600, 9103, 0.15, 4);
}

#[test]
fn nm_watermarks_are_dense_final_and_match_the_blocking_run() {
    // The LeafWatermark API ported back from the multiway TupleStream:
    // one watermark per RQ leaf, everything at or below a watermark is
    // final, and the drained stream's watermarks equal the blocking run's.
    let engine = QueryEngine::new(test_config());
    let p = uniform_points(900, &Rect::DOMAIN, 9201);
    let q = uniform_points(900, &Rect::DOMAIN, 9202);

    let blocking = engine.join(&p, &q, Algorithm::NmCij);
    assert!(!blocking.watermarks.is_empty());
    for (i, w) in blocking.watermarks.iter().enumerate() {
        assert_eq!(w.leaf_index, i, "watermarks are dense and ordered");
    }
    for pair in blocking.watermarks.windows(2) {
        assert!(pair[0].rows <= pair[1].rows);
        assert!(pair[0].page_accesses <= pair[1].page_accesses);
    }
    let last = blocking.watermarks.last().unwrap();
    assert_eq!(last.rows, blocking.pairs.len() as u64);
    assert_eq!(last.page_accesses, blocking.page_accesses());

    // Mid-stream: watermarks recorded so far are a final prefix — draining
    // the rest of the stream must never rewrite them (append-only), and the
    // pairs counted by an early watermark are exactly the pairs the
    // blocking run emits for those leaves.
    let mut w = engine.build_workload(&p, &q);
    let mut stream = engine.stream(&mut w, Algorithm::NmCij);
    let first = stream.next();
    assert!(first.is_some());
    let early = stream.watermarks_so_far();
    assert!(!early.is_empty(), "a processed leaf records its watermark");
    let emitted_at_early: Vec<(u64, u64)> = first.into_iter().chain(stream.by_ref()).collect();
    let full = stream.watermarks_so_far();
    assert_eq!(
        &full[..early.len()],
        &early[..],
        "watermarks are append-only"
    );
    assert_eq!(full, blocking.watermarks);
    assert_eq!(emitted_at_early, blocking.pairs);
    // The watermarked prefix is a prefix of the final pair sequence: the
    // rows counted by the early watermark were all emitted before later
    // leaves contributed anything.
    let early_rows = early.last().unwrap().rows as usize;
    assert_eq!(
        &blocking.pairs[..early_rows],
        &emitted_at_early[..early_rows]
    );
}

#[test]
fn blocking_algorithms_record_no_watermarks() {
    let engine = QueryEngine::new(test_config());
    let p = uniform_points(200, &Rect::DOMAIN, 9203);
    let q = uniform_points(200, &Rect::DOMAIN, 9204);
    for alg in [Algorithm::FmCij, Algorithm::PmCij] {
        let outcome = engine.join(&p, &q, alg);
        assert!(
            outcome.watermarks.is_empty(),
            "{} is blocking: leaf-granular checkpoints are meaningless",
            alg.name()
        );
    }
}

#[test]
fn fm_stream_is_blocking_by_construction_nm_is_not() {
    // Sanity contrast for the non-blocking guard: FM's first pair arrives
    // only after materialisation, NM's long before.
    let engine = QueryEngine::new(test_config());
    let p = uniform_points(700, &Rect::DOMAIN, 9105);
    let q = uniform_points(700, &Rect::DOMAIN, 9106);

    let mut w_fm = engine.build_workload(&p, &q);
    let stats_fm = w_fm.stats.clone();
    let mut fm = engine.stream(&mut w_fm, Algorithm::FmCij);
    let _ = fm.next();
    let fm_first = stats_fm.snapshot().page_accesses();

    let mut w_nm = engine.build_workload(&p, &q);
    let stats_nm = w_nm.stats.clone();
    let mut nm = engine.stream(&mut w_nm, Algorithm::NmCij);
    let _ = nm.next();
    let nm_first = stats_nm.snapshot().page_accesses();

    assert!(
        nm_first * 4 < fm_first,
        "NM first pair ({nm_first} accesses) must be far cheaper than FM's ({fm_first})"
    );
}
