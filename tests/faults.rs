//! Fault-tolerance integration tests: back-pressure at the exact queue
//! bound, drain-on-shutdown with queries in flight, deadline and
//! cancellation semantics through the public API, and the property that
//! seeded transient fault schedules are invisible to every join result.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// Honours the `CIJ_WORKER_THREADS` / `CIJ_STORAGE` overrides CI uses to
/// rerun this suite over the parallel path and the file storage backend.
fn test_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(RTreeConfig {
            page_size: 512,
            min_fill: 0.4,
            max_entries: 64,
        })
        .with_env_overrides()
}

#[test]
fn queue_full_fires_exactly_at_the_queue_depth_boundary() {
    let sets = vec![
        uniform_points(2_000, &Rect::DOMAIN, 7_101),
        uniform_points(2_000, &Rect::DOMAIN, 7_102),
    ];
    let depth = 3;
    let service = CijService::start(
        Arc::new(EngineSnapshot::build(&sets, &test_config())),
        ServiceConfig {
            queue_depth: depth,
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let busy = service.submit(Request::Join { p: 0, q: 1 }).unwrap();
    // The first batch proves the single worker popped the job, so the
    // queue is empty and the worker is occupied for a while.
    assert!(busy.next_batch().is_some());
    // Exactly `depth` submits fit; the next one must bounce.
    let queued: Vec<ResponseHandle> = (0..depth)
        .map(|i| {
            service
                .submit(Request::Join { p: 0, q: 1 })
                .unwrap_or_else(|_| panic!("submit {i} is within the depth-{depth} bound"))
        })
        .collect();
    assert_eq!(
        service.submit(Request::Join { p: 0, q: 1 }).unwrap_err(),
        QueueFull,
        "submit {depth} exceeds the bound"
    );
    // Back-pressure rejected the overflow but every accepted request still
    // completes.
    for handle in queued {
        assert!(!handle.completion().failed);
    }
    assert!(!busy.completion().failed);
    service.shutdown();
}

#[test]
fn shutdown_drains_queries_still_in_flight() {
    let sets = vec![
        uniform_points(300, &Rect::DOMAIN, 7_103),
        uniform_points(300, &Rect::DOMAIN, 7_104),
    ];
    let oracle = brute_force_cij(&sets[0], &sets[1], &test_config().domain);
    let service = CijService::start(
        Arc::new(EngineSnapshot::build(&sets, &test_config())),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<ResponseHandle> = (0..8)
        .map(|_| service.submit(Request::Join { p: 0, q: 1 }).unwrap())
        .collect();
    // Shut down while most of those are still queued or running: the drain
    // contract says every accepted request completes first.
    service.shutdown();
    for handle in handles {
        let mut pairs = handle.collect_pairs();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs, oracle);
        assert!(!handle.completion().failed);
    }
}

#[test]
fn deadlines_and_cancellation_through_the_public_api() {
    let sets = vec![
        uniform_points(400, &Rect::DOMAIN, 7_105),
        uniform_points(400, &Rect::DOMAIN, 7_106),
    ];
    let clock = Arc::new(ManualClock::new());
    // One worker makes the cancellation below deterministic: the cancelled
    // query sits queued behind a busy one when the flag is raised.
    let service = CijService::start_with_clock(
        Arc::new(EngineSnapshot::build(&sets, &test_config())),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn ServiceClock>,
    );
    // Expired-on-arrival deadline: fails at the first watermark boundary.
    let doomed = service
        .submit_with_deadline(Request::Join { p: 0, q: 1 }, Some(0))
        .unwrap();
    let completion = doomed.completion();
    assert!(completion.failed);
    assert_eq!(completion.error, Some(QueryError::DeadlineExceeded));
    // A roomy deadline on the frozen clock never fires.
    let fine = service
        .submit_with_deadline(Request::Multiway { sets: vec![0, 1] }, Some(1 << 40))
        .unwrap();
    assert!(!fine.collect_tuples().is_empty());
    assert!(!fine.completion().failed);
    // Cancellation: raise the flag while the query is still queued behind a
    // busy one; it must end with a Cancelled error, the busy one untouched.
    let busy = service.submit(Request::Join { p: 0, q: 1 }).unwrap();
    let cancelled = service.submit(Request::Join { p: 0, q: 1 }).unwrap();
    cancelled.cancel();
    let completion = cancelled.completion();
    assert!(completion.failed);
    assert_eq!(completion.error, Some(QueryError::Cancelled));
    assert!(!busy.completion().failed);
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded transient fault schedule must be invisible: the store's
    /// retry loop absorbs every injected fault, so the faulty run emits the
    /// exact pairs, counters and page accesses of the clean run.
    #[test]
    fn transient_schedules_never_change_the_emitted_pairs(
        seed in 0u64..u64::MAX,
        n in 50usize..150,
        threads in 1usize..4,
    ) {
        let config = test_config().with_worker_threads(threads);
        let p = uniform_points(n, &Rect::DOMAIN, seed ^ 0x0A11);
        let q = uniform_points(n, &Rect::DOMAIN, seed ^ 0x0B22);
        let clean = {
            let mut w = Workload::build(&p, &q, &config);
            w.reset_measurement();
            nm_cij(&mut w, &config)
        };
        let faulty = {
            let mut w = Workload::build(&p, &q, &config);
            w.reset_measurement();
            w.rp.inject_fault(FaultSpec::transient(seed));
            w.rq.inject_fault(FaultSpec::transient(seed.wrapping_add(1)));
            nm_cij(&mut w, &config)
        };
        prop_assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
        prop_assert_eq!(clean.nm, faulty.nm);
        prop_assert_eq!(clean.page_accesses(), faulty.page_accesses());
    }
}
