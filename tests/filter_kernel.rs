//! Integration tests for the conditional-filter kernels: the sub-quadratic
//! `Indexed` kernel must return exactly the scan kernel's candidate set —
//! across random point sets, polygon batches, domains, grid resolutions and
//! cell bounding — and the engine-level algorithms must be observably
//! identical under either kernel.

use cij::prelude::*;
use cij::rtree::RTreeConfig;
use proptest::prelude::*;

fn tree_config() -> RTreeConfig {
    RTreeConfig {
        page_size: 512,
        min_fill: 0.4,
        max_entries: 64,
    }
}

fn engine_config() -> CijConfig {
    CijConfig::default()
        .with_rtree(tree_config())
        .with_env_overrides()
}

/// Sorted candidate ids of one filter invocation under the given options.
fn run_filter(
    p: &[Point],
    polys: &[ConvexPolygon],
    domain: &Rect,
    options: &FilterOptions,
) -> (Vec<u64>, FilterStats) {
    let mut rp = RTree::bulk_load(tree_config(), PointObject::from_points(p));
    let (candidates, stats) = batch_conditional_filter_with(&mut rp, polys, domain, options);
    let mut ids: Vec<u64> = candidates.iter().map(|c| c.id.0).collect();
    ids.sort_unstable();
    (ids, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Indexed and scan kernels return the same candidate set for random
    /// point sets, polygon batches, domains, grid resolutions and cell
    /// bounding — and their traversals (points examined, entries pruned)
    /// are identical.
    #[test]
    fn kernels_return_the_same_candidate_set(
        seed in 0u64..10_000,
        n_p in 40usize..220,
        n_q in 30usize..120,
        batch in 1usize..14,
        resolution_pick in 0usize..5,
        bound_pick in 0usize..2,
        domain_pick in 0usize..3,
    ) {
        let domain = match domain_pick {
            0 => Rect::DOMAIN,
            1 => Rect::from_coords(-500.0, -250.0, 700.0, 450.0),
            _ => Rect::from_coords(2_000.0, 8_000.0, 2_400.0, 11_000.0),
        };
        let bound_cells = bound_pick == 1;
        let p = uniform_points(n_p, &domain, 18_000 + seed);
        let q = uniform_points(n_q, &domain, 19_000 + seed);
        // Probe batch: exact Voronoi cells of a slice of Q — the polygon
        // shape every caller actually probes with.
        let cells = cij::voronoi::brute_force_diagram(&q, &domain);
        let start = (seed as usize) % (n_q - batch.min(n_q - 1));
        let polys: Vec<ConvexPolygon> = cells[start..start + batch.min(n_q - start)].to_vec();

        let grid_resolution = [0usize, 1, 2, 9, 40][resolution_pick];
        let indexed = FilterOptions {
            kernel: FilterKernel::Indexed,
            grid_resolution,
            bound_cells,
            ..FilterOptions::default()
        };
        let scan = FilterOptions {
            kernel: FilterKernel::Scan,
            grid_resolution: 0,
            bound_cells,
            ..FilterOptions::default()
        };
        let (ids_indexed, stats_indexed) = run_filter(&p, &polys, &domain, &indexed);
        let (ids_scan, stats_scan) = run_filter(&p, &polys, &domain, &scan);
        prop_assert_eq!(ids_indexed, ids_scan);
        prop_assert_eq!(stats_indexed.points_examined, stats_scan.points_examined);
        prop_assert_eq!(stats_indexed.entries_pruned, stats_scan.entries_pruned);
        prop_assert_eq!(stats_scan.poly_tests_skipped, 0);
    }
}

#[test]
fn nm_cij_is_observably_identical_under_either_kernel() {
    let p = uniform_points(700, &Rect::DOMAIN, 18_101);
    let q = clustered_points(
        &ClusterSpec {
            n: 700,
            clusters: 6,
            sigma_fraction: 0.04,
            background_fraction: 0.1,
            size_skew: 0.7,
        },
        &Rect::DOMAIN,
        18_102,
    );
    let run = |kernel: FilterKernel| {
        let engine = QueryEngine::new(engine_config().with_filter_kernel(kernel));
        engine.join(&p, &q, Algorithm::NmCij)
    };
    let indexed = run(FilterKernel::Indexed);
    let scan = run(FilterKernel::Scan);
    // Everything the filter feeds downstream is identical: the pair stream
    // (set and order), the traversal, the refinement work, the I/O.
    assert_eq!(indexed.pairs, scan.pairs);
    assert_eq!(indexed.page_accesses(), scan.page_accesses());
    assert_eq!(
        indexed.nm.filter_points_examined,
        scan.nm.filter_points_examined
    );
    assert_eq!(
        indexed.nm.filter_entries_pruned,
        scan.nm.filter_entries_pruned
    );
    assert_eq!(indexed.nm.filter_candidates, scan.nm.filter_candidates);
    assert_eq!(indexed.nm.p_cells_computed, scan.nm.p_cells_computed);
    assert_eq!(indexed.progress, scan.progress);
    assert_eq!(indexed.watermarks, scan.watermarks);
    // The point of the indexed kernel: strictly fewer clip operations.
    assert!(
        indexed.nm.filter_clip_ops < scan.nm.filter_clip_ops,
        "indexed kernel must clip less ({} vs {})",
        indexed.nm.filter_clip_ops,
        scan.nm.filter_clip_ops
    );
    assert!(indexed.nm.filter_poly_tests_skipped > 0);
    assert_eq!(scan.nm.filter_poly_tests_skipped, 0);
}

#[test]
fn multiway_is_observably_identical_under_either_kernel() {
    let sets = vec![
        uniform_points(150, &Rect::DOMAIN, 18_201),
        uniform_points(100, &Rect::DOMAIN, 18_202),
        uniform_points(70, &Rect::DOMAIN, 18_203),
    ];
    let run = |kernel: FilterKernel| {
        QueryEngine::new(engine_config().with_filter_kernel(kernel)).multiway(&sets)
    };
    let indexed = run(FilterKernel::Indexed);
    let scan = run(FilterKernel::Scan);
    let indexed_ids: Vec<&Vec<u64>> = indexed.tuples.iter().map(|t| &t.ids).collect();
    let scan_ids: Vec<&Vec<u64>> = scan.tuples.iter().map(|t| &t.ids).collect();
    assert_eq!(indexed_ids, scan_ids);
    assert_eq!(indexed.driver, scan.driver);
    assert_eq!(indexed.page_accesses, scan.page_accesses);
    assert_eq!(
        indexed.counters.filter_points_examined,
        scan.counters.filter_points_examined
    );
    assert!(indexed.counters.filter_clip_ops < scan.counters.filter_clip_ops);
}

#[test]
fn parallel_nm_parity_holds_under_the_scan_kernel_too() {
    // The kernel threads through the traced parallel path as well: T=4
    // must stay bit-identical to T=1 under either kernel.
    let p = uniform_points(400, &Rect::DOMAIN, 18_301);
    let q = uniform_points(400, &Rect::DOMAIN, 18_302);
    for kernel in [FilterKernel::Indexed, FilterKernel::Scan] {
        let base = engine_config().with_filter_kernel(kernel);
        let sequential =
            QueryEngine::new(base.with_worker_threads(1)).join(&p, &q, Algorithm::NmCij);
        let parallel = QueryEngine::new(base.with_worker_threads(4)).join(&p, &q, Algorithm::NmCij);
        assert_eq!(parallel.pairs, sequential.pairs, "{:?}", kernel);
        assert_eq!(parallel.nm, sequential.nm, "{:?}", kernel);
        assert_eq!(
            parallel.page_accesses(),
            sequential.page_accesses(),
            "{:?}",
            kernel
        );
        assert_eq!(parallel.watermarks, sequential.watermarks, "{:?}", kernel);
    }
}
